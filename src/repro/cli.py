"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro.cli fig5  [--lookups N] [--dimensions 3 4 5]
    python -m repro.cli fig7
    python -m repro.cli fig8  [--nodes 2000] [--keys 10000 ...]
    python -m repro.cli fig10
    python -m repro.cli fig11 [--lookups N]
    python -m repro.cli fig12 [--rates 0.05 0.4] [--duration SECONDS]
    python -m repro.cli fig13
    python -m repro.cli fig14
    python -m repro.cli fig-crash [--crash-prob 0.1 0.3] [--msg-loss P]
    python -m repro.cli fig-latency [--dimension D] [--latency-seed S]
    python -m repro.cli fig-adversary [--population N] [--fractions F ...]
    python -m repro.cli fig-scale [--counts N ...] [--lookups N]
    python -m repro.cli maint [--lookups N]
    python -m repro.cli table1
    python -m repro.cli bench [--workers N] [--output BENCH_parallel.json]
    python -m repro.cli serve [--protocol P] [--dimension D] [--servers N]
    python -m repro.cli loadgen [--clients N] [--lookups N] [--puts N]
    python -m repro.cli churnstorm [--replicas R] [--kills N] [--rate R]

Each command prints the reproduced table; the heavier sweeps accept
size knobs so a laptop run can be scaled down.

Every figure command accepts ``--workers N`` to fan its experiment out
over N processes through :mod:`repro.sim.parallel`; the output is
bit-identical at any worker count (``bench`` measures and checks
exactly that).  The shard-driven commands additionally accept
``--distribution {snapshot,rebuild}``: ``snapshot`` (default) builds
each cell's network once and hands every shard a restored copy,
``rebuild`` re-runs the join protocol per shard — the digests are
bit-identical either way (DESIGN §S21).

The pure-lookup commands (fig5/6/7, fig14, fig-crash) also accept
``--backend {object,columnar}``: ``object`` (default) routes each
lookup hop-at-a-time over the node graph, ``columnar`` executes the
whole batch as vectorized numpy sweeps (DESIGN §S23) — the records are
bit-identical, the kernel is just faster (``bench``'s ``kernel``
section measures by how much).

``--trace PATH`` (on the lookup-driven commands: fig5/6/7, fig10,
fig11, fig12, fig13, fig14, fig-crash, maint) streams every routing
hop as one JSON line to ``PATH`` — see
:class:`repro.dht.routing.JsonlTraceSink`.  Tracing forces in-process
execution (the sink holds a file handle), overriding ``--workers``.

``serve`` boots a built overlay as a cluster of asyncio node servers
on loopback (DESIGN S22) and writes an attachable spec file;
``loadgen`` drives such a cluster (its own, or one attached via
``--cluster-file``) with concurrent closed-loop clients and writes a
digest-checked ``BENCH_net.json``.  On ``loadgen``, ``--trace``
captures the *live* per-RPC hop stream (the engine's JSONL hop schema
plus ``rpc`` and ``latency_ms`` fields).

``churnstorm`` (DESIGN S24) boots a replicated cluster and batters it:
an open-loop Poisson/Zipf workload fired at scheduled times
(coordinated-omission-free latency) while a seeded churn plan crashes
and rejoins virtual nodes mid-run; afterwards every acknowledged PUT is
read back and the command exits non-zero if any acknowledged key was
lost.  With ``--replicas >= 2`` the acceptance bar is a survival rate
of exactly 1.0.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    format_bench_table,
    format_clone_bench_table,
    format_kernel_bench_table,
    format_table,
)
from repro.dht.routing import JsonlTraceSink, TraceObserver
from repro.experiments import (
    architecture_table,
    bench_report,
    compare_to_baseline,
    run_churn_experiment,
    run_crash_experiment,
    run_key_distribution_experiment,
    run_koorde_sparsity_breakdown,
    run_maintenance_experiment,
    run_mass_departure_experiment,
    run_clone_bench,
    run_kernel_bench,
    run_parallel_bench,
    run_path_length_experiment,
    run_phase_breakdown_experiment,
    run_query_load_experiment,
    run_sparsity_experiment,
    write_bench_report,
)
from repro.experiments.bench import (
    DEFAULT_BENCH_PROTOCOLS,
    KERNEL_BENCH_PROTOCOLS,
    validate_net_report,
)
from repro.experiments.adversary import (
    ADVERSARY_PROTOCOLS,
    DEFAULT_FRACTIONS,
)
from repro.experiments.registry import ALL_PROTOCOLS
from repro.experiments.scale import SCALE_COUNTS, SCALE_PROTOCOLS
from repro.dht.bulkbuild import SAMPLERS
from repro.dht.kernel import BACKENDS
from repro.sim.parallel import DEFAULT_SHARD_SIZE, DISTRIBUTIONS

__all__ = ["main", "build_parser"]


def _add_workers(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the experiment out over N processes; the output is "
        "bit-identical at any worker count (default: 1)",
    )


def _add_distribution(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--distribution",
        choices=DISTRIBUTIONS,
        default="snapshot",
        help="how each shard obtains its network: 'snapshot' builds the "
        "cell once and restores copies (default), 'rebuild' re-runs the "
        "full join protocol per shard; both are bit-identical",
    )


def _add_backend(subparser: argparse.ArgumentParser) -> None:
    # argparse's choices= produces the same actionable error shape as
    # run_sharded_lookups: name the bad value, list the valid choices.
    subparser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="object",
        help="lookup execution backend: 'object' walks the node graph "
        "hop-at-a-time (default), 'columnar' runs the vectorized numpy "
        "kernel (DESIGN S23); both produce bit-identical records",
    )


def _add_latency_model(
    subparser: argparse.ArgumentParser, default_seed: Optional[int]
) -> None:
    """The §S25 link-model knobs.

    With ``default_seed=None`` the model is opt-in (``serve`` /
    ``loadgen`` run without one unless ``--latency-seed`` is given);
    ``fig-latency`` defaults it on.
    """
    subparser.add_argument(
        "--latency-seed",
        type=int,
        default=default_seed,
        metavar="SEED",
        help="seed of the link delay model"
        + (
            " (default: off — hops take no modeled time)"
            if default_seed is None
            else f" (default: {default_seed})"
        ),
    )
    subparser.add_argument("--regions", type=int, default=4, metavar="N")
    subparser.add_argument(
        "--intra-ms", type=float, default=5.0, metavar="MS"
    )
    subparser.add_argument(
        "--inter-min-ms", type=float, default=40.0, metavar="MS"
    )
    subparser.add_argument(
        "--inter-max-ms", type=float, default=160.0, metavar="MS"
    )
    subparser.add_argument(
        "--jitter-ms", type=float, default=10.0, metavar="MS"
    )


def _latency_model(args: argparse.Namespace):
    """The LatencyModel the args describe, or None when opted out."""
    if args.latency_seed is None:
        return None
    from repro.sim.latency import LatencyModel

    return LatencyModel(
        seed=args.latency_seed,
        regions=args.regions,
        intra_ms=args.intra_ms,
        inter_min_ms=args.inter_min_ms,
        inter_max_ms=args.inter_max_ms,
        jitter_ms=args.jitter_ms,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Cycloid paper's tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL per-hop trace of every lookup to PATH "
        "(lookup-driven commands only; forces in-process execution)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig5 = sub.add_parser("fig5", help="path length vs network size")
    fig5.add_argument("--lookups", type=int, default=3000)
    fig5.add_argument(
        "--dimensions", type=int, nargs="+", default=[3, 4, 5, 6, 7, 8]
    )
    fig6 = sub.add_parser("fig6", help="path length vs dimension")
    fig6.add_argument("--lookups", type=int, default=3000)
    fig6.add_argument(
        "--dimensions", type=int, nargs="+", default=[3, 4, 5, 6, 7, 8]
    )

    fig7 = sub.add_parser("fig7", help="phase breakdown")
    fig7.add_argument("--lookups", type=int, default=3000)
    fig7.add_argument(
        "--dimensions", type=int, nargs="+", default=[4, 6, 8]
    )

    for name, nodes in (("fig8", 2000), ("fig9", 1000)):
        p = sub.add_parser(name, help=f"key distribution, {nodes} nodes")
        p.add_argument("--nodes", type=int, default=nodes)
        p.add_argument(
            "--keys", type=int, nargs="+",
            default=[10_000, 50_000, 100_000],
        )
        _add_workers(p)

    fig10 = sub.add_parser("fig10", help="query load balance")
    fig10.add_argument("--lookups-per-node", type=int, default=8)

    fig11 = sub.add_parser("fig11", help="massive departures + Table 4")
    fig11.add_argument("--lookups", type=int, default=10_000)
    fig11.add_argument(
        "--probabilities", type=float, nargs="+",
        default=[0.1, 0.2, 0.3, 0.4, 0.5],
    )

    fig12 = sub.add_parser("fig12", help="churn + Table 5")
    fig12.add_argument(
        "--rates", type=float, nargs="+", default=[0.05, 0.2, 0.4]
    )
    fig12.add_argument("--duration", type=float, default=1000.0)
    fig12.add_argument("--population", type=int, default=2048)

    fig13 = sub.add_parser("fig13", help="sparsity sweep")
    fig13.add_argument("--lookups", type=int, default=5000)

    fig14 = sub.add_parser("fig14", help="Koorde sparsity breakdown")
    fig14.add_argument("--lookups", type=int, default=5000)

    crash = sub.add_parser(
        "fig-crash",
        help="graceful departures vs ungraceful crashes, with retries",
    )
    crash.add_argument("--lookups", type=int, default=2000)
    crash.add_argument(
        "--crash-prob", type=float, nargs="+", default=[0.1, 0.3, 0.5]
    )
    crash.add_argument("--msg-loss", type=float, default=0.05)
    crash.add_argument("--retry-budget", type=int, default=8)
    crash.add_argument("--dimension", type=int, default=8)

    fig_latency = sub.add_parser(
        "fig-latency",
        help="end-to-end lookup milliseconds under a seeded link model, "
        "with Cycloid proximity-vs-random leaf selection (DESIGN S25)",
    )
    fig_latency.add_argument("--lookups", type=int, default=2000)
    fig_latency.add_argument(
        "--dimension",
        type=int,
        default=8,
        help="Cycloid dimension of the complete overlays (default: 8, "
        "i.e. n = 2048)",
    )
    _add_latency_model(fig_latency, default_seed=7)
    fig_latency.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_latency.json",
        help="where to write the JSON latency report "
        "(default: BENCH_latency.json)",
    )

    fig_adversary = sub.add_parser(
        "fig-adversary",
        help="seeded sybil/eclipse attacks: keyspace capture, lookup "
        "interception and degradation vs attacker fraction, plus Zipf "
        "hotspot caching (DESIGN S27)",
    )
    fig_adversary.add_argument(
        "--population",
        type=int,
        default=2048,
        help="honest node count per overlay; the id space holds about "
        "twice as many so crafted attacker ids have free slots "
        "(default: 2048)",
    )
    fig_adversary.add_argument("--lookups", type=int, default=1000)
    fig_adversary.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=list(DEFAULT_FRACTIONS),
        help="attacker fractions to sweep; 0.0 is the honest baseline "
        "(default: 0.0 0.02 0.05 0.1)",
    )
    fig_adversary.add_argument(
        "--protocols",
        nargs="+",
        default=list(ADVERSARY_PROTOCOLS),
        choices=list(ADVERSARY_PROTOCOLS),
    )
    fig_adversary.add_argument("--seed", type=int, default=23)
    fig_adversary.add_argument(
        "--target-key",
        default="adversary-target",
        help="application key the sybil cluster surrounds",
    )
    fig_adversary.add_argument(
        "--cache-capacity",
        type=int,
        default=32,
        help="per-node path-cache bound of the cached hotspot cells "
        "(default: 32)",
    )
    fig_adversary.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_adversary.json",
        help="where to write the JSON adversary report "
        "(default: BENCH_adversary.json)",
    )

    fig_scale = sub.add_parser(
        "fig-scale",
        help="bulk-build 10^4..10^6-node overlays direct-to-columns, "
        "run kernel lookup batches, pin object-build parity (DESIGN S26)",
    )
    fig_scale.add_argument(
        "--counts",
        type=int,
        nargs="+",
        default=list(SCALE_COUNTS),
        help="populations to build (default: 10000 100000 1000000)",
    )
    fig_scale.add_argument(
        "--protocols",
        nargs="+",
        default=list(SCALE_PROTOCOLS),
        choices=list(SCALE_PROTOCOLS),
    )
    fig_scale.add_argument("--lookups", type=int, default=2048)
    fig_scale.add_argument("--seed", type=int, default=11)
    fig_scale.add_argument(
        "--sampler",
        choices=list(SAMPLERS),
        default="fast",
        help="id sampler for the sweep cells; parity always replays "
        "the object builder's 'exact' stream (default: fast)",
    )
    fig_scale.add_argument(
        "--parity-count",
        type=int,
        default=4096,
        help="population of the bulk-vs-object digest pin (default: 4096)",
    )
    fig_scale.add_argument(
        "--ladder",
        type=int,
        nargs="+",
        default=[4096, 16384, 65536],
        help="object-build timing ladder the speedup extrapolates from",
    )
    fig_scale.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_scale.json",
        help="where to write the JSON scale report "
        "(default: BENCH_scale.json)",
    )

    maint = sub.add_parser(
        "maint", help="maintenance fan-out + post-departure lookup probe"
    )
    maint.add_argument("--population", type=int, default=1024)
    maint.add_argument("--events", type=int, default=200)
    maint.add_argument("--lookups", type=int, default=1000)

    for figure in (
        fig5, fig6, fig7, fig10, fig11, fig12, fig13, fig14, crash,
        fig_latency, fig_adversary, maint,
    ):
        _add_workers(figure)
    # The run_sharded_lookups-driven commands also choose a shard
    # network distribution; fig12/maint run whole cells, fig8/9 assign
    # keys without routing, so the knob does not apply to them.
    for figure in (
        fig5, fig6, fig7, fig10, fig11, fig13, fig14, crash, fig_latency,
        fig_adversary,
    ):
        _add_distribution(figure)
    # The pure-lookup cells additionally choose an execution backend.
    for figure in (fig5, fig6, fig7, fig14, crash, fig_latency, fig_adversary):
        _add_backend(figure)

    bench = sub.add_parser(
        "bench",
        help="time serial vs parallel execution and verify bit-exactness",
    )
    bench.add_argument("--dimension", type=int, default=8)
    bench.add_argument("--lookups", type=int, default=2000)
    bench.add_argument("--workers", type=int, default=4, metavar="N")
    bench.add_argument(
        "--shard-size", type=int, default=DEFAULT_SHARD_SIZE
    )
    bench.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_BENCH_PROTOCOLS),
    )
    bench.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_parallel.json",
        help="where to write the JSON bench report "
        "(default: BENCH_parallel.json)",
    )

    def _add_build(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--protocol", choices=ALL_PROTOCOLS, default="cycloid"
        )
        subparser.add_argument(
            "--dimension",
            type=int,
            default=4,
            help="Cycloid dimension of the overlay (complete build "
            "unless --nodes is given)",
        )
        subparser.add_argument(
            "--nodes",
            type=int,
            default=None,
            metavar="N",
            help="build N randomly-placed nodes instead of a complete "
            "overlay",
        )
        subparser.add_argument(
            "--servers",
            type=int,
            default=4,
            metavar="N",
            help="how many asyncio node servers share the overlay "
            "(default: 4)",
        )

    serve = sub.add_parser(
        "serve",
        help="run a built overlay as a live cluster of node servers",
    )
    _add_build(serve)
    _add_latency_model(serve, default_seed=None)
    serve.add_argument(
        "--cluster-file",
        metavar="PATH",
        default=None,
        help="write the attachable cluster spec (directory + build "
        "recipe) to PATH",
    )
    serve.add_argument(
        "--lifetime",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shut down after SECONDS (default: serve until interrupted)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a live cluster closed-loop and write BENCH_net.json",
    )
    _add_build(loadgen)
    _add_latency_model(loadgen, default_seed=None)
    loadgen.add_argument(
        "--cluster-file",
        metavar="PATH",
        default=None,
        help="attach to the running cluster this spec describes "
        "instead of booting a private one",
    )
    loadgen.add_argument("--clients", type=int, default=64, metavar="N")
    loadgen.add_argument("--lookups", type=int, default=256, metavar="N")
    loadgen.add_argument(
        "--puts",
        type=int,
        default=32,
        metavar="N",
        help="PUT/GET pairs to run after the lookups (default: 32)",
    )
    loadgen.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-RPC reply timeout (default: 5.0)",
    )
    loadgen.add_argument(
        "--retry-budget",
        type=int,
        default=8,
        metavar="N",
        help="attempts after the first, per operation — the engine's "
        "retry_budget semantics (default: 8)",
    )
    loadgen.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_net.json",
        help="where to write the net bench report "
        "(default: BENCH_net.json)",
    )

    churnstorm = sub.add_parser(
        "churnstorm",
        help="open-loop churn harness: kill/rejoin nodes mid-load and "
        "verify zero acknowledged-write loss",
    )
    _add_build(churnstorm)
    churnstorm.add_argument(
        "--replicas",
        type=int,
        default=2,
        metavar="R",
        help="leaf-set replication factor of the data plane "
        "(default: 2; zero-loss bar needs >= 2)",
    )
    churnstorm.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="OPS_PER_S",
        help="open-loop Poisson arrival rate (default: 200)",
    )
    churnstorm.add_argument(
        "--ops",
        type=int,
        default=400,
        metavar="N",
        help="operations in the open-loop storm (default: 400)",
    )
    churnstorm.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="client connections the dispatcher round-robins over "
        "(default: 8)",
    )
    churnstorm.add_argument(
        "--kills",
        type=int,
        default=3,
        metavar="N",
        help="virtual nodes to crash mid-run (default: 3)",
    )
    churnstorm.add_argument(
        "--no-rejoin",
        action="store_true",
        help="crash only — do not rejoin the victims afterwards",
    )
    churnstorm.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-RPC reply timeout (default: 5.0)",
    )
    churnstorm.add_argument(
        "--retry-budget",
        type=int,
        default=8,
        metavar="N",
        help="attempts after the first, per operation (default: 8)",
    )
    churnstorm.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_net.json",
        help="where to write the churn bench report "
        "(default: BENCH_net.json)",
    )

    sub.add_parser("table1", help="architecture comparison")
    return parser


def _print(text: str) -> None:
    print(text)
    print()


#: Commands whose lookups can stream to ``--trace`` (everything that
#: runs through the routing engine; fig8/9 and table1 do not issue
#: lookups at all).
TRACEABLE_COMMANDS = (
    "fig5",
    "fig6",
    "fig7",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig-crash",
    "fig-latency",
    "fig-adversary",
    "maint",
)


def _run_fig5_or_6(
    args: argparse.Namespace,
    by_dimension: bool,
    observer: Optional[TraceObserver] = None,
) -> None:
    points = run_path_length_experiment(
        dimensions=tuple(args.dimensions),
        lookups=args.lookups,
        seed=args.seed,
        observer=observer,
        workers=args.workers,
        distribution=args.distribution,
        backend=args.backend,
    )
    x_header = "d" if by_dimension else "n"
    rows = [
        [
            p.dimension if by_dimension else p.size,
            p.protocol,
            f"{p.mean_path_length:.2f}",
        ]
        for p in sorted(points, key=lambda p: (p.size, p.protocol))
    ]
    title = (
        "Fig. 6 — path length vs dimension"
        if by_dimension
        else "Fig. 5 — path length vs network size"
    )
    _print(format_table([x_header, "protocol", "mean path"], rows, title))


def _build_recipe(args: argparse.Namespace) -> dict:
    """The deterministic overlay recipe the serve/loadgen args name."""
    recipe: dict = {"protocol": args.protocol, "seed": args.seed}
    if args.nodes is not None:
        recipe["nodes"] = args.nodes
        recipe["dimension"] = args.dimension
    else:
        recipe["dimension"] = args.dimension
    return recipe


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.cluster import LocalCluster, serve_forever
    from repro.net.loadgen import build_from_recipe

    build = _build_recipe(args)

    latency = _latency_model(args)

    async def _serve() -> None:
        network = build_from_recipe(build)
        cluster = LocalCluster(
            network, servers=args.servers, build=build, latency=latency
        )
        await cluster.start()
        try:
            if args.cluster_file is not None:
                cluster.write_spec(args.cluster_file)
                print(
                    f"cluster spec -> {args.cluster_file}", file=sys.stderr
                )
            print(
                f"serving {len(cluster.directory)} {build['protocol']} "
                f"nodes on {len(cluster.services)} servers:"
            )
            for service in cluster.services:
                host, port = service.address
                print(f"  {host}:{port}  ({len(service.hosted)} nodes)")
            await serve_forever(cluster, args.lifetime)
        finally:
            await cluster.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.net.cluster import load_spec
    from repro.net.loadgen import run_loadgen
    from repro.sim.faults import RetryPolicy

    spec = None
    if args.cluster_file is not None:
        try:
            spec = load_spec(args.cluster_file)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load cluster spec: {exc}", file=sys.stderr)
            return 2
        build = dict(spec["build"])
    else:
        build = _build_recipe(args)

    report = run_loadgen(
        build,
        servers=args.servers,
        clients=args.clients,
        lookups=args.lookups,
        puts=args.puts,
        seed=args.seed,
        retry=RetryPolicy(budget=args.retry_budget),
        timeout=args.timeout,
        spec=spec,
        trace_path=args.trace,
        latency=_latency_model(args),
    )
    validate_net_report(report)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    ops = report["ops"]
    latency = report["latency_ms"]
    digest = report["digest"]
    rows = [
        ["ops", ops["total"]],
        ["failures", ops["failures"]],
        ["client retries", ops["retries"]],
        ["throughput (ops/s)", f"{report['throughput_ops_per_s']:.0f}"],
        ["p50 latency (ms)", f"{latency['p50']:.2f}"],
        ["p95 latency (ms)", f"{latency['p95']:.2f}"],
        ["p99 latency (ms)", f"{latency['p99']:.2f}"],
        ["engine parity", "match" if digest["match"] else "MISMATCH"],
    ]
    if "model_ms" in report:
        model = report["model_ms"]
        rows.append(["modeled p50 (ms)", f"{model['p50']:.2f}"])
        rows.append(
            ["model parity (max |diff| ms)", f"{model['max_abs_diff_ms']:.6f}"]
        )
    _print(
        format_table(
            ["metric", "value"],
            rows,
            f"loadgen — {build['protocol']}, {args.clients} clients",
        )
    )
    print(f"net bench report -> {args.output}", file=sys.stderr)
    if not report.get("complete", True):
        print(
            "note: run was interrupted — the report is partial "
            '("complete": false)',
            file=sys.stderr,
        )
    if args.trace is not None:
        print(
            f"trace: {report['trace']['lines']} hop events -> {args.trace}",
            file=sys.stderr,
        )
    if ops["failures"] or not digest["match"]:
        print(
            "error: live run had failures or diverged from the "
            "in-memory engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_churnstorm(args: argparse.Namespace) -> int:
    import json

    from repro.net.loadgen import run_churnstorm
    from repro.sim.faults import ChurnPlan, RetryPolicy

    build = _build_recipe(args)
    report = run_churnstorm(
        build,
        servers=args.servers,
        replicas=args.replicas,
        rate=args.rate,
        operations=args.ops,
        churn=ChurnPlan(
            seed=args.seed, kills=args.kills, rejoin=not args.no_rejoin
        ),
        seed=args.seed,
        retry=RetryPolicy(budget=args.retry_budget),
        timeout=args.timeout,
        clients=args.clients,
    )
    validate_net_report(report)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    ops = report["ops"]
    churn = report["churn"]
    open_loop = report["open_loop"]["latency_ms"]["all"]
    rows = [
        ["ops", ops["total"]],
        ["failures", ops["failures"]],
        ["client retries", ops["retries"]],
        ["crashes / joins", f"{churn['crashes']} / {churn['joins']}"],
        ["acked writes", churn["acked_writes"]],
        ["lost acked keys", churn["lost_acked_keys"]],
        ["survival rate", f"{churn['survival_rate']:.4f}"],
        [
            "under-replication (ms, max)",
            f"{churn['under_replication_ms']['max']:.1f}",
        ],
        ["open-loop p50 (ms)", f"{open_loop['p50']:.2f}"],
        ["open-loop p95 (ms)", f"{open_loop['p95']:.2f}"],
        ["open-loop p99 (ms)", f"{open_loop['p99']:.2f}"],
    ]
    _print(
        format_table(
            ["metric", "value"],
            rows,
            f"churnstorm — {build['protocol']}, replicas={args.replicas}, "
            f"{args.kills} kills",
        )
    )
    print(f"churn bench report -> {args.output}", file=sys.stderr)
    if not report.get("complete", True):
        print(
            "note: run was interrupted — the report is partial "
            '("complete": false)',
            file=sys.stderr,
        )
    if churn["lost_acked_keys"]:
        print(
            f"error: {churn['lost_acked_keys']} acknowledged key(s) were "
            "lost to churn — the zero-loss bar failed",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    sink: Optional[JsonlTraceSink] = None
    trace_file = None
    # loadgen traces the *live* hop stream itself — the path is passed
    # through instead of opening an engine trace sink here.
    if args.trace is not None and args.command != "loadgen":
        if args.command not in TRACEABLE_COMMANDS:
            print(
                f"error: --trace is not supported for {args.command} "
                f"(traceable: {', '.join(TRACEABLE_COMMANDS)})",
                file=sys.stderr,
            )
            return 2
        try:
            trace_file = open(args.trace, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 2
        sink = JsonlTraceSink(trace_file)

    try:
        return _dispatch(args, sink)
    finally:
        if trace_file is not None:
            trace_file.close()
            print(
                f"trace: {sink.events_written} hop events -> {args.trace}",
                file=sys.stderr,
            )


def _dispatch(
    args: argparse.Namespace, sink: Optional[JsonlTraceSink]
) -> int:
    if args.command == "fig5":
        _run_fig5_or_6(args, by_dimension=False, observer=sink)
    elif args.command == "fig6":
        _run_fig5_or_6(args, by_dimension=True, observer=sink)
    elif args.command == "fig7":
        points = run_phase_breakdown_experiment(
            dimensions=tuple(args.dimensions),
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
            distribution=args.distribution,
            backend=args.backend,
        )
        rows = [
            [
                p.protocol,
                p.size,
                phase,
                f"{p.mean_hops_by_phase[phase]:.2f}",
                f"{p.fraction_by_phase[phase] * 100:.0f}%",
            ]
            for p in points
            for phase in sorted(p.fraction_by_phase)
        ]
        _print(
            format_table(
                ["protocol", "n", "phase", "mean hops", "share"],
                rows,
                "Fig. 7 — phase breakdown",
            )
        )
    elif args.command in ("fig8", "fig9"):
        points = run_key_distribution_experiment(
            node_count=args.nodes,
            key_counts=tuple(args.keys),
            seed=args.seed,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                p.keys,
                f"{p.summary.mean:.1f}",
                f"{p.summary.p1:.0f}",
                f"{p.summary.p99:.0f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "keys", "mean/node", "p1", "p99"],
                rows,
                f"{args.command} — key distribution ({args.nodes} nodes)",
            )
        )
    elif args.command == "fig10":
        points = run_query_load_experiment(
            lookups_per_node=args.lookups_per_node,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                p.size,
                f"{p.summary.mean:.1f}",
                f"{p.summary.p1:.0f}",
                f"{p.summary.p99:.0f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "n", "mean load", "p1", "p99"],
                rows,
                "Fig. 10 — query load",
            )
        )
    elif args.command == "fig11":
        points = run_mass_departure_experiment(
            probabilities=tuple(args.probabilities),
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                f"{p.probability:.1f}",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                p.lookup_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "p", "mean path", "timeouts", "failures"],
                rows,
                "Fig. 11 + Table 4 — massive departures",
            )
        )
    elif args.command == "fig12":
        points = run_churn_experiment(
            rates=tuple(args.rates),
            population=args.population,
            duration=args.duration,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                f"{p.rate:.2f}",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                p.lookup_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "R", "mean path", "timeouts", "failures"],
                rows,
                "Fig. 12 + Table 5 — churn",
            )
        )
    elif args.command == "fig13":
        points = run_sparsity_experiment(
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                f"{p.sparsity:.1f}",
                p.population,
                f"{p.mean_path_length:.2f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "sparsity", "nodes", "mean path"],
                rows,
                "Fig. 13 — sparsity",
            )
        )
    elif args.command == "fig14":
        points = run_koorde_sparsity_breakdown(
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
            distribution=args.distribution,
            backend=args.backend,
        )
        rows = [
            [
                f"{1 - p.size / 2048:.1f}",
                p.size,
                f"{p.fraction_by_phase['successor'] * 100:.0f}%",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["sparsity", "nodes", "successor share"],
                rows,
                "Fig. 14 — Koorde breakdown vs sparsity",
            )
        )
    elif args.command == "fig-crash":
        points = run_crash_experiment(
            probabilities=tuple(args.crash_prob),
            lookups=args.lookups,
            seed=args.seed,
            message_loss=args.msg_loss,
            retry_budget=args.retry_budget,
            dimension=args.dimension,
            observer=sink,
            workers=args.workers,
            distribution=args.distribution,
            backend=args.backend,
        )
        rows = [
            [
                p.protocol,
                f"{p.probability:.1f}",
                p.mode,
                f"{p.success_rate * 100:.1f}%",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                f"{p.mean_retries:.2f}",
                p.route_repairs,
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "protocol",
                    "p",
                    "mode",
                    "success",
                    "mean path",
                    "timeouts",
                    "retries",
                    "repairs",
                ],
                rows,
                "Crash resilience — graceful vs ungraceful failures",
            )
        )
    elif args.command == "fig-latency":
        import json

        from repro.experiments import (
            latency_report,
            run_latency_experiment,
            validate_latency_report,
        )

        model = _latency_model(args)
        points = run_latency_experiment(
            dimension=args.dimension,
            lookups=args.lookups,
            seed=args.seed,
            model=model,
            observer=sink,
            workers=args.workers,
            distribution=args.distribution,
            backend=args.backend,
        )
        report = latency_report(
            points,
            dimension=args.dimension,
            lookups=args.lookups,
            seed=args.seed,
            model=model,
            workers=args.workers,
        )
        validate_latency_report(report)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        rows = [
            [
                p.label,
                f"{p.mean_ms:.2f}",
                f"{p.p50_ms:.2f}",
                f"{p.p95_ms:.2f}",
                f"{p.p99_ms:.2f}",
                f"{p.mean_path_length:.2f}",
                p.digest[:12],
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "overlay",
                    "mean ms",
                    "p50",
                    "p95",
                    "p99",
                    "mean hops",
                    "digest",
                ],
                rows,
                f"fig-latency — modeled milliseconds, n = {points[0].size}",
            )
        )
        proximity = report.get("proximity")
        if proximity is not None:
            verdict = (
                "wins" if proximity["proximity_wins"] else "DOES NOT WIN"
            )
            print(
                f"proximity selection {verdict}: "
                f"{proximity['proximity_mean_ms']:.2f} ms vs "
                f"{proximity['random_mean_ms']:.2f} ms random "
                f"({proximity['improvement_ms']:+.2f} ms)"
            )
            print()
        print(f"latency report -> {args.output}", file=sys.stderr)
    elif args.command == "fig-adversary":
        import json

        from repro.experiments import (
            adversary_report,
            run_adversary_experiment,
            validate_adversary_report,
        )

        results = run_adversary_experiment(
            population=args.population,
            protocols=tuple(args.protocols),
            fractions=tuple(args.fractions),
            lookups=args.lookups,
            seed=args.seed,
            target_key=args.target_key,
            observer=sink,
            workers=args.workers,
            distribution=args.distribution,
            backend=args.backend,
            cache_capacity=args.cache_capacity,
        )
        report = adversary_report(
            results,
            population=args.population,
            lookups=args.lookups,
            seed=args.seed,
            target_key=args.target_key,
            workers=args.workers,
            cache_capacity=args.cache_capacity,
        )
        validate_adversary_report(report)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        rows = [
            [
                p.label,
                str(p.sybils),
                f"{p.capture_fraction:.4f}",
                "yes" if p.target_captured else "no",
                f"{p.interception_rate:.3f}",
                f"{p.success_rate:.3f}",
                f"{p.mean_hops:.2f}",
                p.digest[:12],
            ]
            for p in results["attacks"]
        ]
        _print(
            format_table(
                [
                    "overlay/fraction",
                    "sybils",
                    "capture",
                    "target",
                    "intercept",
                    "success",
                    "mean hops",
                    "digest",
                ],
                rows,
                f"fig-adversary — sybil+eclipse, n = {args.population}",
            )
        )
        hotspot_rows = [
            [
                h.label,
                f"{h.mean_hops:.2f}",
                f"{h.hit_rate:.3f}",
                f"{h.success_rate:.3f}",
                h.digest[:12],
            ]
            for h in results["hotspots"]
        ]
        _print(
            format_table(
                ["overlay/cache", "mean hops", "hit rate", "success", "digest"],
                hotspot_rows,
                f"fig-adversary — Zipf hotspot, s = {report['hotspot']['zipf_s']}",
            )
        )
        print(f"adversary report -> {args.output}", file=sys.stderr)
    elif args.command == "fig-scale":
        import json

        from repro.experiments import (
            run_scale_experiment,
            scale_parity,
            scale_report,
            validate_scale_report,
        )

        points = run_scale_experiment(
            counts=tuple(args.counts),
            protocols=tuple(args.protocols),
            lookups=args.lookups,
            seed=args.seed,
            sampler=args.sampler,
        )
        parity = scale_parity(
            points,
            parity_count=args.parity_count,
            seed=args.seed,
            ladder_counts=tuple(args.ladder),
        )
        report = scale_report(
            points,
            parity,
            lookups=args.lookups,
            seed=args.seed,
            sampler=args.sampler,
        )
        validate_scale_report(report)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        rows = [
            [
                p.protocol,
                f"{p.count:,}",
                p.sizing,
                f"{p.build_seconds:.3f}",
                f"{p.build_nodes_per_sec:,.0f}",
                f"{p.column_bytes / 1e6:.0f}",
                f"{p.lookups_per_sec:,.0f}",
                f"{p.mean_hops:.2f}",
                f"{p.success_rate:.3f}",
                p.digest[:12],
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "protocol",
                    "n",
                    "d/bits",
                    "build s",
                    "nodes/s",
                    "col MB",
                    "lookups/s",
                    "mean hops",
                    "success",
                    "digest",
                ],
                rows,
                "fig-scale — bulk-built overlays under the columnar kernel",
            )
        )
        parity_verdict = "match" if parity["digest_match"] else "MISMATCH"
        speedup_verdict = "ok" if parity["speedup_ok"] else "BELOW BAR"
        print(
            f"parity digest at n={parity['parity_count']}: {parity_verdict}; "
            f"bulk {parity['bulk_build_seconds']:.3f}s vs extrapolated "
            f"object {parity['extrapolated_object_seconds']:.1f}s "
            f"(fit n^{parity['fit_exponent']:.2f}) = "
            f"{parity['speedup']:.0f}x ({speedup_verdict})"
        )
        print()
        print(f"scale report -> {args.output}", file=sys.stderr)
    elif args.command == "maint":
        points = run_maintenance_experiment(
            population=args.population,
            events=args.events,
            seed=args.seed,
            lookups=args.lookups,
            observer=sink,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                f"{p.updates_per_join:.1f}",
                f"{p.updates_per_leave:.1f}",
                f"{p.updates_per_departure:.1f}",
                f"{p.probe_mean_path:.2f}",
                p.probe_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "protocol",
                    "per join",
                    "per leave",
                    "per departure",
                    "probe path",
                    "probe failures",
                ],
                rows,
                "Maintenance fan-out + post-departure probe",
            )
        )
    elif args.command == "bench":
        import json
        import os.path

        cells = run_parallel_bench(
            protocols=tuple(args.protocols),
            dimension=args.dimension,
            lookups=args.lookups,
            workers=args.workers,
            shard_size=args.shard_size,
            seed=args.seed,
        )
        clone_cells = run_clone_bench(
            protocols=tuple(args.protocols),
            dimension=args.dimension,
            shard_size=args.shard_size,
            seed=args.seed,
        )
        kernel_protocols = tuple(
            p for p in args.protocols if p in KERNEL_BENCH_PROTOCOLS
        ) or KERNEL_BENCH_PROTOCOLS
        kernel_cells = run_kernel_bench(
            protocols=kernel_protocols,
            dimension=args.dimension,
            lookups=args.lookups,
            seed=args.seed,
        )
        report = bench_report(
            cells,
            dimension=args.dimension,
            lookups=args.lookups,
            workers=args.workers,
            shard_size=args.shard_size,
            seed=args.seed,
            clone_cells=clone_cells,
            kernel_cells=kernel_cells,
        )
        # Compare against the committed baseline before overwriting it,
        # so throughput drift is surfaced rather than silently replaced.
        baseline = None
        if os.path.exists(args.output):
            try:
                with open(args.output, "r", encoding="utf-8") as handle:
                    baseline = json.load(handle)
            except (OSError, ValueError):
                baseline = None
        for line in compare_to_baseline(report, baseline):
            print(line, file=sys.stderr)
        write_bench_report(args.output, report)
        _print(format_bench_table(report["cells"], args.workers))
        _print(format_clone_bench_table(report["build_vs_clone"]))
        _print(format_kernel_bench_table(report["kernel"]))
        print(f"bench report -> {args.output}", file=sys.stderr)
        if not report["all_match"]:
            print(
                "error: parallel digest mismatch — serial and parallel "
                "runs disagree",
                file=sys.stderr,
            )
            return 1
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "loadgen":
        return _run_loadgen(args)
    elif args.command == "churnstorm":
        return _run_churnstorm(args)
    elif args.command == "table1":
        rows = [
            [
                r.label,
                r.base_network,
                r.lookup_complexity,
                r.routing_state,
                r.max_observed_state,
            ]
            for r in architecture_table(seed=args.seed)
        ]
        _print(
            format_table(
                ["system", "base", "lookup", "state", "measured max"],
                rows,
                "Table 1 — architecture",
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
