"""Common DHT substrate: identifier spaces, hashing, metrics, base protocol.

Everything the four overlay implementations (Cycloid, Chord, Koorde,
Viceroy) share lives here so each experiment can be written once against
the :class:`~repro.dht.base.Network` interface.
"""

from repro.dht.base import LookupOutcome, Network, Node
from repro.dht.hashing import consistent_hash, hash_to_ring, key_ids
from repro.dht.identifiers import CycloidId, RingId, cycloid_space_size
from repro.dht.metrics import LookupRecord, LookupStats
from repro.dht.routing import (
    JsonlTraceSink,
    LookupEngine,
    RecordingTracer,
    RoutingDecision,
    TraceEvent,
    TraceObserver,
)

__all__ = [
    "Network",
    "Node",
    "LookupOutcome",
    "LookupRecord",
    "LookupStats",
    "RoutingDecision",
    "LookupEngine",
    "TraceEvent",
    "TraceObserver",
    "JsonlTraceSink",
    "RecordingTracer",
    "CycloidId",
    "RingId",
    "cycloid_space_size",
    "consistent_hash",
    "hash_to_ring",
    "key_ids",
]
