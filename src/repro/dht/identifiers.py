"""Identifier spaces for the DHTs under study.

Two identifier families appear in the paper:

* a one-dimensional ring ``[0, 2^m)`` (Chord, Koorde; Viceroy uses the
  real interval ``[0, 1)`` which we keep as plain floats), and
* Cycloid's two-dimensional space ``([0, d), [0, 2^d))`` of pairs
  ``(cyclic index k, cubical index a)`` with ``d * 2^d`` points.

:class:`CycloidId` encodes the paper's §3.1 ordering and distance rules:
nodes are primarily ordered by cubical index around the *large cycle*
(mod ``2^d``) and secondarily by cyclic index around a *local cycle*
(mod ``d``).  A key is stored on the node first numerically closest in
cubical index, then in cyclic index, ties resolved clockwise (the key's
successor) — the paper's example being that ``(1,1101)`` is closer to
``(2,1101)`` than ``(2,1001)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Tuple

from repro.util.bitops import circular_distance, clockwise_distance

__all__ = ["CycloidId", "RingId", "cycloid_space_size"]


def cycloid_space_size(dimension: int) -> int:
    """Number of points in a ``dimension``-dimensional Cycloid ID space."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return dimension * (1 << dimension)


@dataclass(frozen=True)
class RingId:
    """An identifier on a ``2^bits`` circular ring (Chord / Koorde).

    Thin wrapper used at API boundaries; the protocol hot paths work on
    raw ints for speed.
    """

    value: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if not 0 <= self.value < (1 << self.bits):
            raise ValueError(
                f"ring id {self.value} outside [0, 2^{self.bits})"
            )

    @property
    def modulus(self) -> int:
        return 1 << self.bits

    def distance_to(self, other: "RingId") -> int:
        """Clockwise distance from self to ``other`` (Chord's metric)."""
        self._check_compatible(other)
        return clockwise_distance(self.value, other.value, self.modulus)

    def between(self, left: "RingId", right: "RingId") -> bool:
        """True iff self lies in the half-open clockwise interval (left, right]."""
        self._check_compatible(left)
        self._check_compatible(right)
        if left.value == right.value:
            return True  # full circle
        d_self = clockwise_distance(left.value, self.value, self.modulus)
        d_right = clockwise_distance(left.value, right.value, self.modulus)
        return 0 < d_self <= d_right

    def _check_compatible(self, other: "RingId") -> None:
        if self.bits != other.bits:
            raise ValueError("ring ids from different spaces")


@total_ordering
@dataclass(frozen=True)
class CycloidId:
    """A Cycloid identifier ``(cyclic index k, cubical index a)``.

    ``cyclic`` ranges over ``[0, dimension)``; ``cubical`` over
    ``[0, 2^dimension)``.  Ordering is lexicographic on (cubical, cyclic),
    which is the linearisation of the large-cycle-of-local-cycles layout.
    """

    cyclic: int
    cubical: int
    dimension: int

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError("dimension must be >= 1")
        if not 0 <= self.cyclic < self.dimension:
            raise ValueError(
                f"cyclic index {self.cyclic} outside [0, {self.dimension})"
            )
        if not 0 <= self.cubical < (1 << self.dimension):
            raise ValueError(
                f"cubical index {self.cubical} outside [0, 2^{self.dimension})"
            )

    # -- linearisation ----------------------------------------------------

    @property
    def linear(self) -> int:
        """Position on the linearised ID space ``[0, d * 2^d)``.

        Local cycles are laid out consecutively: all ``d`` cyclic
        positions of cubical index 0, then of cubical index 1, and so on.
        This is the inverse of :meth:`from_linear` and of the paper's key
        mapping (hash mod d = cyclic, hash div d = cubical).
        """
        return self.cubical * self.dimension + self.cyclic

    @classmethod
    def from_linear(cls, value: int, dimension: int) -> "CycloidId":
        """Build an ID from a linear position (the paper's key mapping)."""
        space = cycloid_space_size(dimension)
        if not 0 <= value < space:
            raise ValueError(f"linear id {value} outside [0, {space})")
        return cls(
            cyclic=value % dimension,
            cubical=value // dimension,
            dimension=dimension,
        )

    # -- ordering ----------------------------------------------------------

    def _key(self) -> Tuple[int, int]:
        return (self.cubical, self.cyclic)

    def __lt__(self, other: "CycloidId") -> bool:
        self._check_compatible(other)
        return self._key() < other._key()

    def _check_compatible(self, other: "CycloidId") -> None:
        if self.dimension != other.dimension:
            raise ValueError("cycloid ids from different dimensions")

    # -- distance (paper §3.1) ---------------------------------------------

    def distance_to(self, other: "CycloidId") -> Tuple[int, int, int, int]:
        """Paper §3.1 closeness as a sortable tuple (smaller = closer).

        Primary: circular distance between cubical indices (mod ``2^d``).
        Secondary: circular distance between cyclic indices (mod ``d``).
        Tie-breaks: prefer the clockwise (successor) side — "in the case
        of two nodes with the same distance to the key's ID, the key's
        successor will be responsible" — and finally the clockwise linear
        distance, which makes the order strict (no two distinct ids
        compare equal, so every key has a unique owner).
        """
        self._check_compatible(other)
        cube_mod = 1 << self.dimension
        cube_dist = circular_distance(self.cubical, other.cubical, cube_mod)
        cyc_dist = circular_distance(self.cyclic, other.cyclic, self.dimension)
        space = cycloid_space_size(self.dimension)
        cw = clockwise_distance(self.linear, other.linear, space)
        succ_bias = 0 if cw <= space // 2 else 1
        return (cube_dist, cyc_dist, succ_bias, cw)

    def closer_of(self, a: "CycloidId", b: "CycloidId") -> "CycloidId":
        """The closer of ``a`` and ``b`` to self under :meth:`distance_to`."""
        return a if self.distance_to(a) <= self.distance_to(b) else b

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.cyclic},{self.cubical:0{self.dimension}b})"
