"""Sorted ring membership shared by the ring-based overlays (Chord, Koorde).

Maintains the live node population sorted by identifier and answers the
global queries the simulators need: successor / predecessor of an
arbitrary point, and the clockwise run of ``r`` nodes.  This is the
*omniscient* view used for ground-truth owners and for (idealised)
stabilisation; routing never touches it.
"""

from __future__ import annotations

import bisect
from typing import Dict, Generic, List, Sequence, TypeVar

from repro.dht.snapshot import register_composite

__all__ = ["SortedRing", "in_interval"]

N = TypeVar("N")


def in_interval(x: int, left: int, right: int, modulus: int) -> bool:
    """True iff ``x`` lies in the clockwise half-open interval ``(left, right]``.

    When ``left == right`` the interval is the whole ring — the standard
    Chord convention for a single-node ring.
    """
    if left == right:
        return True
    d_x = (x - left) % modulus
    d_right = (right - left) % modulus
    return 0 < d_x <= d_right


class SortedRing(Generic[N]):
    """Live nodes keyed by integer identifier on a ``2^bits`` ring."""

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        self.modulus = 1 << bits
        self._ids: List[int] = []
        self._by_id: Dict[int, N] = {}

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    def add(self, node_id: int, node: N) -> None:
        if not 0 <= node_id < self.modulus:
            raise ValueError(f"id {node_id} outside [0, {self.modulus})")
        if node_id in self._by_id:
            raise ValueError(f"duplicate ring id {node_id}")
        bisect.insort(self._ids, node_id)
        self._by_id[node_id] = node

    def remove(self, node_id: int) -> N:
        if node_id not in self._by_id:
            raise KeyError(node_id)
        index = bisect.bisect_left(self._ids, node_id)
        del self._ids[index]
        return self._by_id.pop(node_id)

    def get(self, node_id: int) -> N:
        return self._by_id[node_id]

    def ids(self) -> Sequence[int]:
        """Sorted live identifiers (read-only view by convention)."""
        return self._ids

    def nodes(self) -> List[N]:
        """Live nodes in identifier order."""
        return [self._by_id[i] for i in self._ids]

    # -- ring queries --------------------------------------------------------

    def successor_id(self, point: int) -> int:
        """The first live id clockwise at-or-after ``point`` (wraps)."""
        if not self._ids:
            raise LookupError("empty ring")
        index = bisect.bisect_left(self._ids, point % self.modulus)
        if index == len(self._ids):
            index = 0
        return self._ids[index]

    def successor(self, point: int) -> N:
        return self._by_id[self.successor_id(point)]

    def predecessor_id(self, point: int) -> int:
        """The first live id strictly counter-clockwise before ``point``."""
        if not self._ids:
            raise LookupError("empty ring")
        index = bisect.bisect_left(self._ids, point % self.modulus) - 1
        return self._ids[index]  # index -1 wraps to the largest id

    def predecessor(self, point: int) -> N:
        return self._by_id[self.predecessor_id(point)]

    def at_or_before_id(self, point: int) -> int:
        """The first live id at-or-counter-clockwise-before ``point``."""
        point %= self.modulus
        if point in self._by_id:
            return point
        return self.predecessor_id(point)

    def at_or_before(self, point: int) -> N:
        return self._by_id[self.at_or_before_id(point)]

    def successor_run(self, node_id: int, count: int) -> List[N]:
        """The ``count`` nodes clockwise after ``node_id`` (excluding it).

        Stops early once the run would wrap back onto ``node_id`` — on a
        ring of ``k`` nodes a successor list never exceeds ``k - 1``.
        """
        if node_id not in self._by_id:
            raise KeyError(node_id)
        ids = self._ids
        take = min(count, len(ids) - 1)
        if take <= 0:
            return []
        # Two contiguous slices instead of a per-step ``%`` walk: the
        # run is ``ids[index:index+take]`` plus (on wrap) a prefix.
        index = bisect.bisect_right(ids, node_id)
        run_ids = ids[index : index + take]
        if len(run_ids) < take:
            run_ids = run_ids + ids[: take - len(run_ids)]
        by_id = self._by_id
        return [by_id[i] for i in run_ids]


register_composite(SortedRing)
