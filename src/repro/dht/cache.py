"""Opt-in path caching for hotspot workloads (DESIGN §S27).

Zipf-skewed workloads hammer a handful of hot keys; structured overlays
answer every one of those lookups with a full O(d)-hop walk.  The
classic remedy is *path caching*: every node a successful lookup passes
through remembers ``key -> owner``, so the next request for a hot key
that starts (or lands) anywhere along a previous path short-circuits
straight to the owner.

:class:`PathCacheLayer` wraps a network with bounded per-node LRU
caches:

* a **miss** routes through the shared
  :class:`~repro.dht.routing.LookupEngine` exactly as an uncached
  lookup would, then — on success — populates the cache of every node
  on the recorded path with the resolved owner;
* a **hit** at the source answers in a single hop (source → cached
  owner); a hit on the owner itself answers in zero.  The hit is
  validated against liveness (dead entries are evicted, the lookup
  falls back to routing) but *not* against ownership — a stale-but-live
  entry produces a cache-served failure, which is the honest price of
  caching under churn and is visible in the stats.

Caching never alters the underlying routing: with ``capacity=0`` the
layer is a pure pass-through and its records are bit-identical to
:meth:`~repro.dht.base.Network.lookup_many` — pinned by a parity test.
Cache state is deterministic: it depends only on the sequence of
lookups performed, never on ids, hashes, or iteration order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.dht.metrics import LookupRecord
from repro.dht.routing import LookupEngine

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.dht.base import Network, Node

__all__ = ["CacheStats", "PathCacheLayer"]

#: phase label carried by cache-served lookup records.
CACHE_PHASE = "cached"


@dataclass
class CacheStats:
    """Counters for one :class:`PathCacheLayer`."""

    lookups: int = 0
    #: lookups answered from the source's cache (including self-hits).
    hits: int = 0
    #: lookups that routed through the engine.
    misses: int = 0
    #: entries dropped by LRU capacity pressure.
    evictions: int = 0
    #: cache entries dropped because the cached node had died.
    expired: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expired": self.expired,
            "hit_rate": self.hit_rate,
        }


class PathCacheLayer:
    """Bounded per-node ``key_id -> owner`` caches over a network.

    ``capacity`` bounds every node's cache individually (LRU eviction);
    ``capacity=0`` disables caching entirely, making the layer a
    bit-exact pass-through.  One engine is shared across all lookups,
    mirroring :meth:`~repro.dht.base.Network.lookup_many`.
    """

    def __init__(self, network: "Network", capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.network = network
        self.capacity = capacity
        self.stats = CacheStats()
        self._engine = LookupEngine(network)
        #: per-node-name LRU: key_id -> owner node object.
        self._caches: Dict[str, "OrderedDict[object, Node]"] = {}

    def cache_of(self, node: object) -> "OrderedDict[object, Node]":
        """The (possibly empty) cache of the node named ``node``."""
        name = str(node if not hasattr(node, "name") else node.name)
        cache = self._caches.get(name)
        if cache is None:
            cache = self._caches[name] = OrderedDict()
        return cache

    def _store(self, name: str, key_id: object, owner: "Node") -> None:
        cache = self._caches.get(name)
        if cache is None:
            cache = self._caches[name] = OrderedDict()
        if key_id in cache:
            cache.move_to_end(key_id)
        cache[key_id] = owner
        if len(cache) > self.capacity:
            cache.popitem(last=False)
            self.stats.evictions += 1

    def lookup(self, source: "Node", key: object) -> LookupRecord:
        """One lookup for application ``key`` from ``source``, through
        the cache."""
        network = self.network
        key_id = network.key_id(key)
        self.stats.lookups += 1
        if self.capacity == 0:
            self.stats.misses += 1
            return self._engine.run(source, key_id)

        cache = self.cache_of(source)
        cached = cache.get(key_id)
        if cached is not None and not cached.alive:
            del cache[key_id]
            self.stats.expired += 1
            cached = None
        if cached is not None:
            cache.move_to_end(key_id)
            self.stats.hits += 1
            owner = network.cached_owner_of_id(key_id)
            if cached is source:
                return LookupRecord(
                    hops=0,
                    success=cached is owner,
                    source=source.name,
                    key=key_id,
                    owner=cached.name,
                    path=[source.name],
                )
            return LookupRecord(
                hops=1,
                success=cached is owner,
                phase_hops={CACHE_PHASE: 1},
                source=source.name,
                key=key_id,
                owner=cached.name,
                path=[source.name, cached.name],
            )

        self.stats.misses += 1
        record = self._engine.run(source, key_id)
        if record.success:
            owner = network.cached_owner_of_id(key_id)
            for name in record.path:
                self._store(str(name), key_id, owner)
        return record

    def lookup_many(
        self, pairs: Iterable[Tuple["Node", object]]
    ) -> List[LookupRecord]:
        """Route a batch of ``(source, application key)`` lookups
        through the cache, in order (order matters: earlier lookups
        warm the caches later ones hit)."""
        return [self.lookup(source, key) for source, key in pairs]

    def entries(self) -> int:
        """Total cached entries across all nodes (for accounting)."""
        return sum(len(cache) for cache in self._caches.values())

    def clear(self) -> None:
        """Drop all cached entries (stats are kept)."""
        self._caches.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PathCacheLayer capacity={self.capacity} "
            f"entries={self.entries()} hit_rate={self.stats.hit_rate:.3f}>"
        )
