"""Per-lookup and aggregate metrics.

A simulated lookup produces a :class:`LookupRecord`: its hop count, a
per-phase hop breakdown (ascending/descending/traverse for Cycloid and
Viceroy, de-Bruijn/successor for Koorde, finger/successor for Chord),
the number of timeouts (dead nodes contacted, paper §4.3) and whether it
reached the key's correct storing node.  :class:`LookupStats` aggregates
records into the paper's reporting quantities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.util.stats import (
    DistributionSummary,
    PhaseBreakdown,
    mean,
    percentile,
    summarize,
)

__all__ = ["LookupRecord", "LookupStats"]


@dataclass(slots=True)
class LookupRecord:
    """Outcome of one simulated lookup.

    ``path`` holds the node names the message passed through, source
    first — ``len(path) == hops + 1`` whenever it is recorded.

    ``phase_hops``, when present, must sum to ``hops``.  Records built
    by :class:`repro.dht.routing.LookupEngine` always carry the full
    phase dict (every phase of the protocol, zero-filled), so the
    empty-dict escape below only applies to hand-built records.

    ``retries`` counts the engine's fault-mode probe continuations
    (re-sends after lost messages plus fallbacks past dead targets); it
    is always 0 on the fault-free path.

    ``latency_ms`` is the modeled end-to-end milliseconds of the lookup
    when the run was driven with a :class:`repro.sim.latency.LatencyModel`
    attached — the sum of the model's per-link delays along ``path``.
    It stays ``None`` on latency-free runs, keeping those records (and
    their digests) bit-identical to the pre-latency engine.
    """

    hops: int
    success: bool
    timeouts: int = 0
    phase_hops: Dict[str, int] = field(default_factory=dict)
    source: Optional[object] = None
    key: Optional[object] = None
    owner: Optional[object] = None
    path: List[object] = field(default_factory=list)
    retries: int = 0
    latency_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hops < 0:
            raise ValueError("hops must be non-negative")
        if self.timeouts < 0:
            raise ValueError("timeouts must be non-negative")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        phase_total = sum(self.phase_hops.values())
        if self.phase_hops and phase_total != self.hops:
            raise ValueError(
                f"phase hops {phase_total} do not sum to total hops {self.hops}"
            )
        if self.path and len(self.path) != self.hops + 1:
            raise ValueError(
                f"path of {len(self.path)} entries does not match "
                f"{self.hops} hops"
            )
        if self.latency_ms is not None and self.latency_ms < 0.0:
            raise ValueError("latency_ms must be non-negative")


@dataclass
class LookupStats:
    """Aggregate over many :class:`LookupRecord` instances."""

    records: List[LookupRecord] = field(default_factory=list)

    def add(self, record: LookupRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[LookupRecord]) -> None:
        self.records.extend(records)

    def merge(self, other: "LookupStats") -> "LookupStats":
        """Fold ``other``'s records into this aggregate (in place).

        Merging is associative, and every derived quantity except the
        record *order* (means, percentiles, failure and phase totals) is
        invariant under permutation of the merged parts — the property
        the sharded runner (:mod:`repro.sim.parallel`) relies on and the
        hypothesis suite pins.  Returns ``self`` for chaining.
        """
        self.records.extend(other.records)
        return self

    @classmethod
    def merged(cls, parts: Iterable["LookupStats"]) -> "LookupStats":
        """One aggregate over many partial aggregates."""
        total = cls()
        for part in parts:
            total.records.extend(part.records)
        return total

    def digest(self) -> str:
        """sha256 over every record's full canonical content.

        The digest covers ``(hops, timeouts, success, retries,
        phase_hops, source, key, owner, path)`` of every record *in
        order*, so two runs agree iff they produced bit-identical
        records in the same sequence — the equality the parallel-parity
        tests and the ``bench`` command assert between worker counts.
        A record that carries a modeled ``latency_ms`` appends it (the
        exact float ``repr``) to its tuple; latency-free records keep
        the original 9-tuple shape so the committed golden baselines
        stay valid verbatim.
        """

        def canonical(r: LookupRecord) -> tuple:
            parts = (
                r.hops,
                r.timeouts,
                r.success,
                r.retries,
                sorted(r.phase_hops.items()),
                str(r.source),
                str(r.key),
                str(r.owner),
                [str(node) for node in r.path],
            )
            if r.latency_ms is not None:
                parts += (r.latency_ms,)
            return parts

        blob = repr([canonical(r) for r in self.records]).encode()
        return hashlib.sha256(blob).hexdigest()

    def __len__(self) -> int:
        return len(self.records)

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> int:
        """Lookups that did not reach the key's correct storing node."""
        return sum(1 for r in self.records if not r.success)

    @property
    def mean_path_length(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.hops for r in self.records) / len(self.records)

    def path_length_summary(self) -> DistributionSummary:
        return summarize([r.hops for r in self.records])

    def timeout_summary(self) -> DistributionSummary:
        """Mean and 1st/99th percentile timeouts (Tables 4 and 5)."""
        return summarize([r.timeouts for r in self.records])

    @property
    def total_retries(self) -> int:
        """Fault-mode probe continuations summed over all lookups."""
        return sum(r.retries for r in self.records)

    def retry_summary(self) -> DistributionSummary:
        """Distribution of per-lookup retry counts (crash experiment)."""
        return summarize([r.retries for r in self.records])

    def latencies_ms(self) -> List[float]:
        """The modeled per-lookup milliseconds, for records that have
        them (latency-free records are simply absent)."""
        return [
            r.latency_ms for r in self.records if r.latency_ms is not None
        ]

    @property
    def mean_latency_ms(self) -> float:
        """Mean modeled lookup latency; 0.0 when nothing was modeled."""
        return mean(self.latencies_ms())

    def latency_percentiles(self) -> Dict[str, float]:
        """The milliseconds distribution the fig-latency experiment
        reports: mean plus p50/p95/p99 (linear interpolation, matching
        :func:`repro.util.stats.percentile`).  All zeros when no record
        carries a modeled latency."""
        values = self.latencies_ms()
        return {
            "mean": mean(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }

    def phase_breakdown(self) -> PhaseBreakdown:
        """Per-phase hop shares across all lookups (Figs 7 and 14)."""
        breakdown = PhaseBreakdown()
        for record in self.records:
            breakdown.record(record.phase_hops)
        return breakdown

    def query_load(self) -> Mapping[object, int]:
        """Not tracked here — query load is counted by the networks.

        Provided to fail loudly if an experiment asks the wrong object.
        """
        raise NotImplementedError(
            "query load is recorded per node by Network.query_counts()"
        )
