"""Pluggable lookup execution backends (DESIGN §S23).

Lookup execution is a *backend* choice, selected by name everywhere a
batch of lookups is routed (``Network.lookup_many`` /
``Network.route_many``, :func:`repro.experiments.common.run_lookups`,
:func:`repro.sim.parallel.run_sharded_lookups`, and the ``--backend``
CLI flag):

* ``object`` — the golden reference: the hop-at-a-time
  :class:`~repro.dht.routing.LookupEngine` walking the node object
  graph.  Always available, always exact, and the default.
* ``columnar`` — this module's vectorized kernel.  A network is
  *compiled* once per batch into flat numpy int columns — the same
  node universe :func:`~repro.dht.snapshot.pack_network` enumerates
  (every live node plus every dead node still referenced by a stale
  pointer, index-encoded) laid out as per-slot arrays: routing-table
  columns, leaf-set/successor runs padded to fixed width with ``-1``,
  and an aliveness mask.  A whole batch of lookups then advances as
  one *wave* per hop: frontier arrays hold each lookup's current node,
  hop/timeout counters and per-phase totals, and the protocol's
  ``next_hop`` preference cascade is expressed as gather/compare/select
  over the columns — each preference tier becomes a candidate matrix
  segment, ranked by the same sort keys the object engine uses, and the
  accepted hop is the first live candidate per row with dead candidates
  before it each costing one timeout (ranked-alternate fallback as a
  masked gather).

The acceptance bar is bit-exactness: identical
:class:`~repro.dht.metrics.LookupStats` digests, per-lookup records,
and query-load counters, pinned by the kernel parity suite.

**Fallback rules** (documented, deliberate): the columnar path runs
only for protocols with a registered compiler (Cycloid — both leaf
radii — and Chord), only without a per-hop trace observer, and only
when no *active* fault injector is attached.  Fault-mode batches are
inherently sequential — probe verdicts consume the injector's loss RNG
in lookup order and ``on_dead_entry`` repairs mutate routing state that
later lookups in the same shard must see — so they take the object
engine, which is the same semantics by definition.  Either way the
caller gets bit-identical records, so ``backend="columnar"`` is always
safe to request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.dht.metrics import LookupRecord
from repro.dht.routing import LookupEngine, TraceObserver

try:  # numpy is a hard dependency of the columnar backend only
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network, Node
    from repro.sim.faults import FaultInjector
    from repro.sim.latency import LatencyModel

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "check_backend",
    "columnar_protocols",
    "compiler_for",
    "kernel_from_columns",
    "supports_columnar",
    "run_lookup_batch",
    "annotate_latency",
]

#: Selectable lookup execution backends, in preference-free name order.
BACKENDS: Tuple[str, ...] = ("object", "columnar")

#: The golden reference engine; tier-1 behaviour never changes unless a
#: caller opts in to another backend.
DEFAULT_BACKEND = "object"

#: Sentinel larger than any packed sort key (segment keys stay below
#: 2**60 for every realistic dimension).
_INF = np.int64(2**62) if np is not None else None


def check_backend(backend: str) -> None:
    """Validate a backend name, mirroring the actionable
    ``run_sharded_lookups`` distribution error: name the bad value and
    list the valid choices."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )


#: protocol_name -> kernel compiler class.
_COMPILERS: Dict[str, Type] = {}


def _register(protocol_name: str):
    def decorate(cls):
        _COMPILERS[protocol_name] = cls
        return cls

    return decorate


def columnar_protocols() -> Tuple[str, ...]:
    """Protocols with a fully-columnar compiled step function."""
    return tuple(sorted(_COMPILERS))


def supports_columnar(network: "Network") -> bool:
    """True when ``network``'s protocol compiles to the columnar kernel."""
    return network.protocol_name in _COMPILERS


def compiler_for(protocol_name: str) -> Type:
    """The kernel compiler class for ``protocol_name``, or an actionable
    error: unlike the silent object-engine fallback of
    :func:`run_lookup_batch`, callers that *require* columns (bulk
    builds, array-mode batches) get told exactly what is covered and
    what to do instead."""
    compiler = _COMPILERS.get(protocol_name)
    if compiler is None:
        raise ValueError(
            f"no columnar kernel for protocol {protocol_name!r}; "
            f"columnar protocols: {columnar_protocols()}, "
            f"available backends: {BACKENDS}; every protocol routes on "
            "the object engine — fall back to backend='object' "
            "(--backend object)"
        )
    return compiler


def kernel_from_columns(columns, hop_limit: Optional[int] = None):
    """Compile bulk-built columns (:mod:`repro.dht.bulkbuild`) into a
    ready kernel — no object graph on either side.  The kernel supports
    the array-mode entry points (``run_linear`` / ``run_ids``) only;
    record-building batches need node objects and therefore a network
    (``columns.to_network()`` + the normal backend path)."""
    return compiler_for(columns.protocol).from_columns(
        columns, hop_limit=hop_limit
    )


def run_lookup_batch(
    network: "Network",
    pairs: Iterable[Tuple["Node", object]],
    *,
    backend: str = DEFAULT_BACKEND,
    observer: Optional[TraceObserver] = None,
    injector: Optional["FaultInjector"] = None,
    retry_budget: int = 0,
    hashed: bool = False,
    latency: Optional["LatencyModel"] = None,
) -> List[LookupRecord]:
    """Route a batch of lookups through the selected backend.

    ``pairs`` holds ``(source, application key)`` tuples, or
    ``(source, key id)`` when ``hashed`` is true.  The columnar backend
    falls back to the object engine per the module-docstring rules;
    records are bit-identical either way.

    A ``latency`` model is applied *after* the columnar walk: the total
    is a pure function of the record's path, so annotating each record
    with the left-to-right sum of per-link delays reproduces the object
    engine's floats bit-exactly (same addition order).
    """
    check_backend(backend)
    if retry_budget < 0:
        raise ValueError("retry_budget must be >= 0")
    pairs = list(pairs)
    if backend == "columnar" and pairs:
        fault_mode = injector is not None and injector.active
        compiler = _COMPILERS.get(network.protocol_name)
        if compiler is not None and observer is None and not fault_mode:
            if np is None:  # pragma: no cover - numpy is baked into CI
                raise RuntimeError(
                    "the columnar backend requires numpy; install it or "
                    "use backend='object'"
                )
            sources = [source for source, _ in pairs]
            if hashed:
                key_ids = [key for _, key in pairs]
            else:
                key_id = network.key_id
                key_ids = [key_id(key) for _, key in pairs]
            records = compiler(network).run(sources, key_ids)
            if latency is not None:
                annotate_latency(records, latency)
            return records
    engine = LookupEngine(network, observer, injector, retry_budget, latency)
    if hashed:
        return engine.run_batch(pairs)
    key_id = network.key_id
    return [engine.run(source, key_id(key)) for source, key in pairs]


def annotate_latency(
    records: List[LookupRecord], latency: "LatencyModel"
) -> None:
    """Charge ``latency`` onto ``records`` from their paths, in place.

    Sums each record's consecutive-pair link delays left to right —
    the exact float-addition order of
    :meth:`repro.dht.routing.LookupEngine.run` — so columnar records
    digest identically to object-engine records under the same model.
    """
    delay_ms = latency.delay_ms
    for record in records:
        path = record.path
        total_ms = 0.0
        for index in range(len(path) - 1):
            total_ms += delay_ms(path[index], path[index + 1])
        record.latency_ms = total_ms


# ----------------------------------------------------------------------
# shared compile helpers
# ----------------------------------------------------------------------


def _intern_universe(live_nodes, pointer_slots):
    """Index the node universe: live nodes first (stable order), then
    every dead node still referenced by a live node's pointers — the
    same reachable set ``pack_network`` flattens, because a stale
    pointer to a departed node is load-bearing state (it is what
    produces timeouts)."""
    index: Dict[int, int] = {}
    nodes: List[object] = []
    for node in live_nodes:
        index[id(node)] = len(nodes)
        nodes.append(node)
    for node in live_nodes:
        for target in pointer_slots(node):
            if target is not None and id(target) not in index:
                index[id(target)] = len(nodes)
                nodes.append(target)
    return nodes, index


def _pad_matrix(rows: Sequence[Sequence[int]], width: int, dtype="int32"):
    """Stack variable-length index runs into an ``-1``-padded matrix.

    Index matrices default to ``int32``: node indices are bounded by
    the population, and halving the gather bandwidth is measurable at
    scale.  Value matrices pass ``dtype="int64"`` explicitly.
    """
    out = np.full((len(rows), width), -1, dtype=dtype)
    for i, row in enumerate(rows):
        if row:
            out[i, : len(row)] = row
    return out


def _msdb(a, b):
    """Vectorized most-significant-different-bit; ``-1`` when equal.

    ``frexp`` exponents are exact for integers below 2**53, far above
    any cubical index, and ``frexp(0)`` returns exponent 0 — exactly
    the ``-1`` convention after the shift."""
    diff = np.bitwise_xor(a, b)
    return np.frexp(diff.astype(np.float64))[1].astype(np.int64) - 1


def _first_true(mask):
    """Per-row index of the first True column; ``width`` when none."""
    width = mask.shape[1]
    pos = np.argmax(mask, axis=1)
    return np.where(mask.any(axis=1), pos, width)


def _sort_segment(key, *arrays):
    """Stable per-row sort of a candidate segment by ``key`` (invalid
    entries carry ``_INF`` and sink to the end); gathers ``arrays``
    through the same permutation."""
    order = np.argsort(key, axis=1, kind="stable")
    return tuple(np.take_along_axis(a, order, axis=1) for a in arrays)


class _KernelBase:
    """Column compiler + wave executor shared bones."""

    #: phase code -> phase label, set by subclasses in template order.
    PHASES: Tuple[str, ...] = ()

    def _flush_query_counts(self, hop_targets, names, network) -> None:
        """Replicate ``Network._record_visit`` for every counted hop
        target (intermediate and final, never the source)."""
        if hop_targets.size == 0:
            return
        counts = np.bincount(hop_targets)
        query_counts = network._query_counts
        for node_index in np.flatnonzero(counts):
            query_counts[names[node_index]] += int(counts[node_index])

    def _build_records(
        self,
        sources,
        key_ids,
        hops,
        timeouts,
        success,
        phase_counts,
        final_idx,
        hop_log,
        names,
    ) -> List[LookupRecord]:
        batch = len(sources)
        paths: List[List[object]] = [[source.name] for source in sources]
        for rows, targets, _phases in hop_log:
            target_names = [names[t] for t in targets.tolist()]
            for row, target_name in zip(rows.tolist(), target_names):
                paths[row].append(target_name)
        phase_labels = self.PHASES
        hops_l = hops.tolist()
        touts_l = timeouts.tolist()
        success_l = success.tolist()
        final_l = final_idx.tolist()
        phase_rows = phase_counts.tolist()
        records = []
        for b in range(batch):
            records.append(
                LookupRecord(
                    hops=hops_l[b],
                    success=success_l[b],
                    timeouts=touts_l[b],
                    phase_hops=dict(zip(phase_labels, phase_rows[b])),
                    source=sources[b].name,
                    key=key_ids[b],
                    owner=names[final_l[b]],
                    path=paths[b],
                    retries=0,
                )
            )
        return records


# ----------------------------------------------------------------------
# Cycloid
# ----------------------------------------------------------------------


@_register("cycloid")
class CycloidKernel(_KernelBase):
    """Compiled Cycloid routing (core/network.py's fault-free cascade).

    Memory layout: per-node int64 columns ``cyclic`` / ``cubical`` /
    ``linear`` and a bool ``alive`` mask; the three routing-table slots
    as index columns (``-1`` for void); the four leaf-set sides as
    ``[n, leaf_radius]`` index matrices padded with ``-1``; precomputed
    outside-arc endpoints per node.  ``alias`` maps every index to the
    live holder of its identifier (identity for live nodes), so the
    by-id ``visited`` checks of the object engine translate to plain
    row gathers.
    """

    PHASES = ("ascending", "descending", "traverse")
    _ASC, _DESC, _TRAV = 0, 1, 2
    #: cascade codes, one per candidate segment in iteration order.
    _SEG_ASC, _SEG_NB, _SEG_ENT, _SEG_TRV, _SEG_INS, _SEG_TIED = range(6)

    def __init__(self, network) -> None:
        self.network = network
        self.hop_limit = network.HOP_LIMIT
        d = network.dimension
        self.d = d
        self.modulus = 1 << d
        self.space = d << d
        radius = network.leaf_radius
        self.radius = radius

        def slots(node):
            yield node.cubical_neighbor
            yield node.cyclic_larger
            yield node.cyclic_smaller
            yield from node.leaf_entries()

        live = list(network.live_nodes())
        nodes, index = _intern_universe(live, slots)
        self.nodes = nodes
        self.index = index
        self.names = [node.name for node in nodes]
        count = len(nodes)

        # One extraction pass over the universe — attribute access per
        # node dominates compile time, so every column is collected in
        # the same loop.  A dead node is only ever *pointed at* —
        # routing never departs from it — so its table columns stay
        # empty; only its identity scalars matter.
        cyc_l: List[int] = []
        cub_l: List[int] = []
        alive_l: List[bool] = []
        cn_l: List[int] = []
        cl_l: List[int] = []
        cs_l: List[int] = []
        il_rows: List[Sequence[int]] = []
        ir_rows: List[Sequence[int]] = []
        ol_rows: List[Sequence[int]] = []
        or_rows: List[Sequence[int]] = []
        arc_l_l: List[int] = []
        arc_r_l: List[int] = []
        for n in nodes:
            cubical = n.cubical
            cyc_l.append(n.cyclic)
            cub_l.append(cubical)
            if n.alive:
                alive_l.append(True)
                t = n.cubical_neighbor
                cn_l.append(-1 if t is None else index[id(t)])
                t = n.cyclic_larger
                cl_l.append(-1 if t is None else index[id(t)])
                t = n.cyclic_smaller
                cs_l.append(-1 if t is None else index[id(t)])
                il_rows.append([index[id(l)] for l in n.inside_left])
                ir_rows.append([index[id(l)] for l in n.inside_right])
                out_side = n.outside_left
                ol_rows.append([index[id(l)] for l in out_side])
                # Outside-arc endpoints: the *furthest* outside primary
                # on each side, or the node's own cycle when empty.
                arc_l_l.append(out_side[-1].cubical if out_side else cubical)
                out_side = n.outside_right
                or_rows.append([index[id(l)] for l in out_side])
                arc_r_l.append(out_side[-1].cubical if out_side else cubical)
            else:
                alive_l.append(False)
                cn_l.append(-1)
                cl_l.append(-1)
                cs_l.append(-1)
                il_rows.append(())
                ir_rows.append(())
                ol_rows.append(())
                or_rows.append(())
                arc_l_l.append(cubical)
                arc_r_l.append(cubical)
        self.cyc = np.array(cyc_l, dtype=np.int64)
        self.cub = np.array(cub_l, dtype=np.int64)
        self.lin = self.cub * d + self.cyc
        self.alive = np.array(alive_l, dtype=bool)
        self.cn = np.array(cn_l, dtype=np.int32)
        self.cl = np.array(cl_l, dtype=np.int32)
        self.cs = np.array(cs_l, dtype=np.int32)
        self.il = _pad_matrix(il_rows, radius)
        self.ir = _pad_matrix(ir_rows, radius)
        self.ol = _pad_matrix(ol_rows, radius)
        self.outr = _pad_matrix(or_rows, radius)
        self.arc_left = np.array(arc_l_l, dtype=np.int64)
        self.arc_right = np.array(arc_r_l, dtype=np.int64)
        # alias: by-id lookup (visited is a set of *identifiers*, and a
        # dead node can share an id with a live one after id reuse).
        alias = np.arange(count, dtype=np.int32)
        dead = np.flatnonzero(~self.alive)
        if dead.size:
            live_by_linear = {
                int(self.lin[i]): i for i in range(count) if self.alive[i]
            }
            for i in dead.tolist():
                alias[i] = live_by_linear.get(int(self.lin[i]), i)
        self.alias = alias
        self.all_alive = bool(self.alive.all())
        self._finalize()

    @classmethod
    def from_columns(cls, columns, hop_limit: Optional[int] = None):
        """Compile directly from bulk-built columns — no object graph.

        The resulting kernel has no network, node list or name table:
        only the array-mode entry point (:meth:`run_linear`) works.
        Bulk columns describe a freshly built network, so every node is
        live and the outside matrices may be narrower than
        ``leaf_radius`` (few occupied cycles); they are re-padded here
        to the layout the wave kernel slices."""
        if np is None:  # pragma: no cover - numpy is baked into CI
            raise RuntimeError(
                "the columnar kernel requires numpy; install it or "
                "use backend='object'"
            )
        from repro.dht.base import Network  # runtime: cycle is type-only

        self = cls.__new__(cls)
        self.network = None
        self.hop_limit = Network.HOP_LIMIT if hop_limit is None else hop_limit
        d = columns.dimension
        self.d = d
        self.modulus = 1 << d
        self.space = d << d
        radius = columns.leaf_radius
        self.radius = radius
        self.nodes = None
        self.index = None
        self.names = None
        count = columns.count
        self.cyc = columns.cyc
        self.cub = columns.cub
        self.lin = columns.lin
        self.alive = np.ones(count, dtype=bool)
        self.cn = columns.cn
        self.cl = columns.cl
        self.cs = columns.cs
        self.il = columns.inside_left
        self.ir = columns.inside_right

        def repad(matrix):
            width = matrix.shape[1]
            if width >= radius:
                return matrix
            pad = np.full((count, radius - width), -1, dtype=matrix.dtype)
            return np.concatenate([matrix, pad], axis=1)

        self.ol = repad(columns.outside_left)
        self.outr = repad(columns.outside_right)
        # Outside-arc endpoints: the furthest outside pick per side
        # (the last *valid* outside column — every row has the same
        # outside length in a bulk build).
        furthest = columns.outside_left.shape[1] - 1
        self.arc_left = self.cub[columns.outside_left[:, furthest]]
        self.arc_right = self.cub[columns.outside_right[:, furthest]]
        self.alias = np.arange(count, dtype=np.int32)
        self.all_alive = True
        self._finalize()
        return self

    def _finalize(self) -> None:
        """Shared compile tail: candidate matrices, the owner oracle and
        the cascade sort constants — pure column math, identical for
        object-extracted and bulk-built kernels."""
        d = self.d
        radius = self.radius

        # Precompiled candidate matrices — one row gather per wave
        # each; every later segment is a column slice of the leaves.
        self.leaf_all = np.concatenate(
            [self.il, self.ir, self.ol, self.outr], axis=1
        )
        self.ent_all = np.concatenate(
            [self.cl[:, None], self.cs[:, None], self.il, self.ir], axis=1
        )
        # The keep-first dedupe by id only matters when some node's
        # leaf set actually repeats an identifier (tiny cycles, few
        # occupied cycles); prove its absence once at compile time.
        leaf_w = self.leaf_all.shape[1]
        lid = np.where(
            self.leaf_all >= 0,
            self.lin[np.maximum(self.leaf_all, 0)],
            np.int64(-1),
        )
        self.leaf_dup_free = not any(
            bool(
                (
                    (lid[:, :j] == lid[:, j : j + 1])
                    & (lid[:, j : j + 1] >= 0)
                ).any()
            )
            for j in range(1, leaf_w)
        )

        # Owner oracle: sorted occupied cycles plus a [cycles, d]
        # member matrix.  The packed distance's primary component is
        # the cubical circular distance, so the global argmin lives in
        # the first occupied cycle at-or-after the key or the first
        # one before it — every other cycle is strictly farther on
        # both arcs.
        live_idx = np.flatnonzero(self.alive)
        live_cub = self.cub[live_idx]
        occ = np.unique(live_cub)
        group = np.searchsorted(occ, live_cub)
        order = np.argsort(group, kind="stable")
        grouped = group[order]
        starts = np.searchsorted(grouped, np.arange(occ.size))
        rank = np.arange(live_idx.size, dtype=np.int64) - starts[grouped]
        members = np.full((occ.size, d), -1, dtype=np.int32)
        members[grouped, rank] = live_idx[order]
        self.occ_cycles = occ
        self.cycle_members = members

        # The cascade runs as ONE namespaced sort: every segment key is
        # offset by `segment code * seg_off`, so a single stable
        # argsort yields the segments in iteration order, each
        # internally ranked.  `seg_off` strictly exceeds any
        # within-segment key (the descending key, the largest, is
        # bounded by (packed * 2 + 1) * width + width).
        max_pd = (((self.modulus // 2) * (d + 1) + d) * 2 + 1) * self.space
        max_pd += self.space
        max_w = 4 * radius + 3
        self.seg_off = np.int64(
            1 << int((max_pd * 2 + 1) * max_w + max_w).bit_length()
        )
        self._phase_of_seg = np.array(
            [self._ASC, self._DESC, self._DESC,
             self._TRAV, self._TRAV, self._TRAV],
            dtype=np.int64,
        )

    # -- distance ------------------------------------------------------

    def _packed_from(self, ncub, ncyc, nlin, kcub, kcyc, klin):
        """§3.1 closeness as one int64, order-identical to the
        ``(cube, cyclic, succ_bias, clockwise)`` tuple — strict total
        order, so min-reduction equals the engine's sequential
        strict-`<` best updates."""
        d, modulus, space = self.d, self.modulus, self.space
        dc = (ncub - kcub) % modulus
        dc = np.minimum(dc, modulus - dc)
        dk = (ncyc - kcyc) % d
        dk = np.minimum(dk, d - dk)
        cw = (nlin - klin) % space
        bias = cw > space // 2
        return ((dc * (d + 1) + dk) * 2 + bias) * space + cw

    def _packed_distance(self, kcub, kcyc, klin, node_idx):
        return self._packed_from(
            self.cub[node_idx], self.cyc[node_idx], self.lin[node_idx],
            kcub, kcyc, klin,
        )

    def _owners(self, kcub, kcyc, klin):
        """Per-lookup ground-truth owner index — ``owner_of_id``'s
        nearest-cubical scan.  The owner is the packed-distance argmin
        over live nodes, and the candidate cycles bracketing the key
        (see the compile-time oracle) always contain it, so only their
        members are ranked: O(batch * 2d) instead of O(batch * n)."""
        occ = self.occ_cycles
        pos = np.searchsorted(occ, kcub)
        cand = np.concatenate(
            # pos - 1 == -1 wraps to the last occupied cycle.
            [self.cycle_members[pos % occ.size], self.cycle_members[pos - 1]],
            axis=1,
        )
        safe = np.maximum(cand, 0)
        dist = np.where(
            cand >= 0,
            self._packed_distance(
                kcub[:, None], kcyc[:, None], klin[:, None], safe
            ),
            _INF,
        )
        return safe[np.arange(kcub.shape[0]), np.argmin(dist, axis=1)]

    # -- execution -----------------------------------------------------

    def run(self, sources, key_ids) -> List[LookupRecord]:
        network = self.network
        # The engine sets this on every run; fault-free batches always
        # route with dead-entry filtering inside the step function.
        network.fault_detection = False
        batch = len(sources)
        index = self.index
        cur = np.fromiter(
            (index[id(source)] for source in sources), np.int64, batch
        )
        if not bool(self.alive[cur].all()):
            raise ValueError("lookup source must be alive")
        kcyc = np.fromiter((k.cyclic for k in key_ids), np.int64, batch)
        kcub = np.fromiter((k.cubical for k in key_ids), np.int64, batch)
        klin = kcub * self.d + kcyc

        hops, timeouts, success, phase_counts, final_idx, hop_log = (
            self._execute(cur, kcub, kcyc, klin)
        )
        all_targets = (
            np.concatenate([targets for _, targets, _ in hop_log])
            if hop_log
            else np.empty(0, dtype=np.int64)
        )
        self._flush_query_counts(all_targets, self.names, network)
        return self._build_records(
            sources, key_ids, hops, timeouts, success, phase_counts,
            final_idx, hop_log, self.names,
        )

    def run_linear(self, source_idx, key_linear) -> Dict[str, object]:
        """Array-mode batch: node-index sources, linear-id keys.

        The record-free entry point for bulk-built kernels (and scale
        sweeps generally): identical wave execution, but inputs and
        outputs stay numpy arrays — no node objects, names or
        ``LookupRecord`` allocation.  Returns per-lookup ``hops`` /
        ``timeouts`` / ``success`` / ``final`` (delivery node index) /
        ``owners`` plus the ``[batch, phases]`` ``phase_counts``.
        """
        cur = np.asarray(source_idx, dtype=np.int64).copy()
        klin = np.asarray(key_linear, dtype=np.int64)
        if not bool(self.alive[cur].all()):
            raise ValueError("lookup source must be alive")
        kcyc = klin % self.d
        kcub = klin // self.d
        hops, timeouts, success, phase_counts, final_idx, _hop_log = (
            self._execute(cur, kcub, kcyc, klin)
        )
        return {
            "hops": hops,
            "timeouts": timeouts,
            "success": success,
            "phase_counts": phase_counts,
            "final": final_idx,
        }

    def _execute(self, cur, kcub, kcyc, klin):
        batch = cur.shape[0]
        owners = self._owners(kcub, kcyc, klin)
        count = self.cyc.shape[0]
        visited = np.zeros((batch, count), dtype=bool)
        explored = np.zeros((batch, self.modulus), dtype=bool)
        # begin_route observes the source.
        best_key = self._packed_distance(kcub, kcyc, klin, cur)
        best_idx = cur.copy()
        hops = np.zeros(batch, dtype=np.int64)
        timeouts = np.zeros(batch, dtype=np.int64)
        phase_counts = np.zeros((batch, 3), dtype=np.int64)
        done = np.zeros(batch, dtype=bool)
        hop_log: List[Tuple] = []
        hop_limit = self.hop_limit

        while True:
            active = ~done & (hops < hop_limit)
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            current = cur[rows]
            exact = self.lin[current] == klin[rows]
            if exact.any():
                done[rows[exact]] = True
                rows = rows[~exact]
                if rows.size == 0:
                    continue
                current = cur[rows]
            visited[rows, current] = True
            nxt, pcode, wave_touts = self._decide(
                rows, current, kcub[rows], kcyc[rows], klin[rows],
                visited, explored, best_key, best_idx,
            )
            timeouts[rows] += wave_touts
            forwarded = nxt >= 0
            go = rows[forwarded]
            targets = nxt[forwarded]
            cur[go] = targets
            hops[go] += 1
            phase_counts[go, pcode[forwarded]] += 1
            hop_log.append((go, targets, pcode[forwarded]))
            done[rows[~forwarded]] = True

        # finish_route: one delivery hop to the best-observed node when
        # the walk stopped elsewhere (best is always set — the source
        # was observed — and alive, the network being static here).
        deliver = best_idx != cur
        final_idx = np.where(deliver, best_idx, cur)
        hops = hops + deliver
        phase_counts[:, self._TRAV] += deliver
        deliver_rows = np.flatnonzero(deliver)
        if deliver_rows.size:
            hop_log.append(
                (
                    deliver_rows,
                    final_idx[deliver_rows],
                    np.full(deliver_rows.size, self._TRAV, dtype=np.int64),
                )
            )

        success = final_idx == owners  # Cycloid walks never dead-end
        return hops, timeouts, success, phase_counts, final_idx, hop_log

    def _decide(
        self, rows, current, kcub, kcyc, klin, visited, explored,
        best_key, best_idx,
    ):
        """One vectorized `_choose_next` wave.

        The preference cascade becomes six candidate-matrix segments in
        iteration order — ascending outside leaves, the cubical
        neighbour, the descending cyclic/inside candidates, the
        traverse-closer leaves, the last-mile inside-unvisited leaves
        and the last-mile tied-cycle primaries — each ranked by the
        object engine's own sort key.  The accepted hop is the first
        live, unvisited (unless the segment allows revisits) candidate;
        dead candidates at earlier positions cost one timeout each,
        deduplicated by identifier exactly like ``dead_tried``.
        """
        d, modulus = self.d, self.modulus
        m = rows.size
        radius = self.radius
        all_alive = self.all_alive
        cur_cub = self.cub[current]
        cur_cyc = self.cyc[current]
        cur_cube = (cur_cub - kcub) % modulus
        cur_cube = np.minimum(cur_cube, modulus - cur_cube)
        cur_bit = _msdb(cur_cub, kcub)
        cur_dist = self._packed_from(
            cur_cub, cur_cyc, self.lin[current], kcub, kcyc, klin
        )
        col = current[:, None]
        kcub_c = kcub[:, None]
        kcyc_c = kcyc[:, None]
        klin_c = klin[:, None]

        # Leaf matrix in leaf_entries() order ([IL, IR, OL, OR]),
        # keep-first deduped by id (the `_unique_leaves` list), self
        # excluded by identity.  The inside/outside segments below are
        # column slices of it, so node attributes and packed distances
        # are gathered once here.
        leaves = self.leaf_all[current]
        leaf_w = 4 * radius
        half = 2 * radius
        leaf_safe = np.maximum(leaves, 0)
        leaf_ok = (leaves >= 0) & (leaves != col)
        leaf_cub = self.cub[leaf_safe]
        leaf_cyc = self.cyc[leaf_safe]
        leaf_cube = (leaf_cub - kcub_c) % modulus
        leaf_cube = np.minimum(leaf_cube, modulus - leaf_cube)
        leaf_pd = self._packed_from(
            leaf_cub, leaf_cyc, self.lin[leaf_safe], kcub_c, kcyc_c, klin_c
        )
        if self.leaf_dup_free:
            leaf_uniq = leaf_ok
        else:
            leaf_id = np.where(leaf_ok, self.lin[leaf_safe], -1)
            leaf_uniq = leaf_ok.copy()
            for j in range(1, leaf_w):
                dup = (leaf_id[:, :j] == leaf_id[:, j : j + 1]).any(axis=1)
                leaf_uniq[:, j] &= ~dup

        # Observe every (unique) leaf before the cascade runs.
        if all_alive:
            leaf_is_alive = None
            leaf_obs = leaf_uniq
        else:
            leaf_is_alive = self.alive[leaf_safe]
            leaf_obs = leaf_uniq & leaf_is_alive
        self._observe(rows, leaf_obs, leaf_pd, leaf_safe, best_key, best_idx)

        # Traverse trigger: key's cubical index inside the outside arc.
        arc_l = self.arc_left[current]
        arc_r = self.arc_right[current]
        traversing = np.where(
            arc_l == arc_r,
            kcub == arc_l,
            ((kcub - arc_l) % modulus) <= ((arc_r - arc_l) % modulus),
        )
        ascending = ~traversing & (cur_cyc < cur_bit)
        desc_eq = ~traversing & (cur_cyc == cur_bit)
        desc_gt = ~traversing & (cur_cyc > cur_bit)

        # Segments are assembled dynamically: one with no eligible row
        # contributes no valid candidate, so it is dropped outright —
        # a wave mid-descent never pays for the ascending or last-mile
        # machinery.  Each included segment appends (candidates,
        # validity, within-segment key, packed distances) plus its
        # cascade code; the codes namespace one shared sort below.
        parts_cand: List = []
        parts_valid: List = []
        parts_key: List = []
        parts_pd: List = []
        parts_code: List[int] = []

        def push(code, cand_m, valid_m, rank_key, pd_m) -> None:
            w = cand_m.shape[1]
            key = np.where(
                valid_m,
                rank_key + np.arange(w, dtype=np.int64),
                _INF,
            )
            parts_cand.append(cand_m)
            parts_valid.append(valid_m)
            parts_key.append(key)
            parts_pd.append(pd_m)
            parts_code.extend([code] * w)

        outside = leaves[:, half:]
        out_w = half
        out_cub = leaf_cub[:, half:]
        out_cube = leaf_cube[:, half:]
        out_real = leaf_ok[:, half:]
        out_pd = leaf_pd[:, half:]

        # Segment 1 — ascending via raw outside leaves (the trailing
        # [OL, OR] leaf columns), sorted by (cubical distance, -cyclic,
        # cubical).
        if ascending.any():
            asc_valid = (
                ascending[:, None] & out_real & (out_cube < cur_cube[:, None])
            )
            asc_rank = (
                out_cube * d + (d - 1 - leaf_cyc[:, half:])
            ) * modulus + out_cub
            push(self._SEG_ASC, outside, asc_valid, asc_rank * out_w, out_pd)

        # Segment 2 — the cubical neighbour (descending, k == MSDB),
        # gated by the φ convergence criterion (strict).
        if desc_eq.any():
            neighbor = self.cn[current]
            nb_safe = np.maximum(neighbor, 0)
            nb_cub = self.cub[nb_safe]
            nb_m = _msdb(nb_cub, kcub)
            nb_cube = (nb_cub - kcub) % modulus
            nb_cube = np.minimum(nb_cube, modulus - nb_cube)
            nb_valid = (
                desc_eq
                & (neighbor >= 0)
                & (
                    (nb_m < cur_bit)
                    | ((nb_m == cur_bit) & (nb_cube < cur_cube))
                )
            )
            nb_pd = self._packed_distance(kcub, kcyc, klin, nb_safe)
            push(
                self._SEG_NB,
                neighbor[:, None],
                nb_valid[:, None],
                np.int64(0),
                nb_pd[:, None],
            )

        # Segment 3 — descending (k > MSDB) via cyclic neighbours and
        # inside leaves, ranked by (distance, side-preference).  The
        # inside-leaf distances are leaf columns; only the two cyclic
        # neighbours need fresh gathers.
        if desc_gt.any():
            entries = self.ent_all[current]
            ent_w = 2 + half
            ent_safe = np.maximum(entries, 0)
            ent_cyc = self.cyc[ent_safe]
            ent_cub = self.cub[ent_safe]
            ent_m = _msdb(ent_cub, kcub_c)
            ent_cube = (ent_cub - kcub_c) % modulus
            ent_cube = np.minimum(ent_cube, modulus - ent_cube)
            phi_ok = (ent_m < cur_bit[:, None]) | (
                (ent_m == cur_bit[:, None]) & (ent_cube <= cur_cube[:, None])
            )
            ent_valid = (
                desc_gt[:, None]
                & (entries >= 0)
                & (entries != col)
                & (cur_bit[:, None] <= ent_cyc)
                & (ent_cyc < cur_cyc[:, None])
                & phi_ok
            )
            ent_pd = np.concatenate(
                [
                    self._packed_distance(
                        kcub_c, kcyc_c, klin_c, ent_safe[:, :2]
                    ),
                    leaf_pd[:, :half],
                ],
                axis=1,
            )
            prefer_larger = ((kcub - cur_cub) % modulus) <= modulus // 2
            larger_side = ent_cub >= cur_cub[:, None]
            side_flag = (larger_side != prefer_larger[:, None]).astype(
                np.int64
            )
            push(
                self._SEG_ENT,
                entries,
                ent_valid,
                (ent_pd * 2 + side_flag) * ent_w,
                ent_pd,
            )

        # Segment 4 — traverse fallback: unique leaves strictly closer
        # to the key, sorted by distance (no phase gate).
        trv_valid = leaf_uniq & (leaf_pd < cur_dist[:, None])
        push(self._SEG_TRV, leaves, trv_valid, leaf_pd * leaf_w, leaf_pd)

        # Last-mile gate: no live outside primary is cubically closer.
        live_out = (
            out_real if all_alive else out_real & leaf_is_alive[:, half:]
        )
        locally_minimal = ~(live_out & (out_cube < cur_cube[:, None])).any(
            axis=1
        )
        if locally_minimal.any():
            # Segment 5 — last-mile inside leaves (the leading [IL, IR]
            # leaf columns) not yet visited (by id; dead entries
            # included, costing timeouts), sorted by distance.
            inside = leaves[:, :half]
            ins_safe = leaf_safe[:, :half]
            ins_alias = ins_safe if all_alive else self.alias[ins_safe]
            ins_unvisited = ~visited[rows[:, None], ins_alias]
            ins_valid = (
                locally_minimal[:, None] & leaf_ok[:, :half] & ins_unvisited
            )
            ins_pd = leaf_pd[:, :half]
            push(self._SEG_INS, inside, ins_valid, ins_pd * half, ins_pd)

            # Segment 6 — last-mile tied-cycle primaries (live outside
            # leaves at equal cubical distance, unexplored cycles),
            # sorted by distance; revisits allowed.
            tied_valid = (
                locally_minimal[:, None]
                & live_out
                & (out_cube == cur_cube[:, None])
                & ~explored[rows[:, None], out_cub]
            )
            push(self._SEG_TIED, outside, tied_valid, out_pd * out_w, out_pd)

        # One namespaced stable sort yields the full cascade: valid
        # candidates appear in (segment, within-segment rank) order —
        # the exact iteration sequence of the object engine, merely
        # compacted past the invalid entries, which never accept, never
        # time out and are never observed.
        code_cols = np.array(parts_code, dtype=np.int64)
        key_all = np.concatenate(parts_key, axis=1) + code_cols * self.seg_off
        order = np.argsort(key_all, axis=1, kind="stable")
        cand = np.take_along_axis(
            np.concatenate(parts_cand, axis=1), order, axis=1
        )
        valid = np.take_along_axis(
            np.concatenate(parts_valid, axis=1), order, axis=1
        )
        cand_pd = np.take_along_axis(
            np.concatenate(parts_pd, axis=1), order, axis=1
        )
        code = code_cols[order]
        width = cand.shape[1]
        positions = np.arange(width, dtype=np.int64)

        cand_safe = np.maximum(cand, 0)
        cand_alive = valid if all_alive else valid & self.alive[cand_safe]
        cand_alias = cand_safe if all_alive else self.alias[cand_safe]
        cand_visited = visited[rows[:, None], cand_alias]
        acceptable = cand_alive & (
            (code == self._SEG_TIED) | ~cand_visited
        )
        accept_pos = _first_true(acceptable)

        # Timeouts: dead candidates iterated before the accepted one,
        # deduplicated by identifier (`dead_tried`); a fully-live
        # universe has none.
        if all_alive:
            wave_touts = np.zeros(m, dtype=np.int64)
        else:
            cand_id = np.where(valid, self.lin[cand_safe], -1)
            cand_dead = valid & ~self.alive[cand_safe]
            dup = np.zeros_like(cand_dead)
            for j in range(1, width):
                dup[:, j] = (
                    (cand_id[:, :j] == cand_id[:, j : j + 1])
                    & cand_dead[:, :j]
                ).any(axis=1)
            wave_touts = (
                cand_dead & ~dup & (positions[None, :] < accept_pos[:, None])
            ).sum(axis=1)

        # Observe routing-table candidates actually iterated (segments
        # 2 and 3; every other segment is a leaf subset, observed
        # above).  `try_candidates` observes live candidates up to and
        # including the accepted position.
        if desc_eq.any() or desc_gt.any():
            rt_obs = (
                ((code == self._SEG_NB) | (code == self._SEG_ENT))
                & cand_alive
                & (positions[None, :] <= accept_pos[:, None])
            )
            self._observe(
                rows, rt_obs, cand_pd, cand_safe, best_key, best_idx
            )

        accepted = accept_pos < width
        gather = np.minimum(accept_pos, width - 1)
        row_arange = np.arange(m)
        accept_code = code[row_arange, gather]

        # explored_cycles.add(current.cubical) fires whenever the walk
        # is locally minimal and the inside attempt found nothing —
        # i.e. the cascade accepted in the tied segment or nothing at
        # all.
        mark = locally_minimal & (
            ~accepted | (accept_code == self._SEG_TIED)
        )
        if mark.any():
            explored[rows[mark], cur_cub[mark]] = True

        nxt = np.where(accepted, cand[row_arange, gather], -1)
        pcode = self._phase_of_seg[accept_code]
        return nxt, pcode, wave_touts

    @staticmethod
    def _observe(rows, mask, packed, cand_safe, best_key, best_idx):
        """Fold observed candidates into the best-seen trackers.  The
        packed distance is a strict total order, so the masked row
        minimum reproduces the engine's sequential strict-`<` updates
        regardless of observation order."""
        keyed = np.where(mask, packed, _INF)
        m = keyed.shape[0]
        jmin = np.argmin(keyed, axis=1)
        row_arange = np.arange(m)
        row_min = keyed[row_arange, jmin]
        update = row_min < best_key[rows]
        target_rows = rows[update]
        best_key[target_rows] = row_min[update]
        best_idx[target_rows] = cand_safe[row_arange[update], jmin[update]]


# ----------------------------------------------------------------------
# Chord
# ----------------------------------------------------------------------


@_register("chord")
class ChordKernel(_KernelBase):
    """Compiled Chord routing (chord/network.py's fault-free cascade).

    Memory layout: per-node int64 ``ids`` plus a bool ``alive`` mask;
    the finger table as an ``[n, bits]`` index matrix (``-1`` for
    stale-void entries); the successor list as an ``[n, r]`` run padded
    with ``-1``; the predecessor as one index column.  The owner oracle
    is a ``searchsorted`` over the sorted live identifiers — the ring's
    successor scan."""

    PHASES = ("finger", "successor")
    _FINGER, _SUCC = 0, 1

    def __init__(self, network) -> None:
        self.network = network
        self.hop_limit = network.HOP_LIMIT
        self.bits = network.bits
        self.modulus = network.ring.modulus

        def slots(node):
            yield from node.fingers
            yield from node.successors
            yield node.predecessor

        live = list(network.live_nodes())
        nodes, index = _intern_universe(live, slots)
        self.nodes = nodes
        self.index = index
        self.names = [node.name for node in nodes]
        count = len(nodes)
        self.ids = np.fromiter((n.id for n in nodes), np.int64, count)
        self.alive = np.fromiter((n.alive for n in nodes), bool, count)

        def ref(target) -> int:
            return -1 if target is None else index[id(target)]

        bits = network.bits
        # Dead nodes are pointed at, never routed from: empty columns.
        self.fingers = _pad_matrix(
            [[ref(f) for f in n.fingers] if n.alive else [] for n in nodes],
            bits,
        )
        succ_width = max(
            (len(n.successors) for n in nodes if n.alive), default=1
        )
        succ_width = max(succ_width, 1)
        self.successors = _pad_matrix(
            [
                [index[id(s)] for s in n.successors] if n.alive else []
                for n in nodes
            ],
            succ_width,
        )
        self.succ_len = np.fromiter(
            (len(n.successors) if n.alive else 0 for n in nodes),
            np.int64,
            count,
        )
        self.pred = np.fromiter(
            (ref(n.predecessor) if n.alive else -1 for n in nodes),
            np.int32,
            count,
        )
        order = np.argsort(self.ids[self.alive], kind="stable")
        live_idx = np.flatnonzero(self.alive)
        self.live_sorted_ids = self.ids[self.alive][order]
        self.live_sorted_idx = live_idx[order].astype(np.int32)
        self.all_alive = bool(self.alive.all())
        self._finalize()

    @classmethod
    def from_columns(cls, columns, hop_limit: Optional[int] = None):
        """Compile directly from bulk-built columns — no object graph.

        Array-mode only (:meth:`run_ids`); see
        :meth:`CycloidKernel.from_columns`.  A single-node build has a
        zero-width successor run; it is padded to the one-column layout
        the wave kernel expects."""
        if np is None:  # pragma: no cover - numpy is baked into CI
            raise RuntimeError(
                "the columnar kernel requires numpy; install it or "
                "use backend='object'"
            )
        from repro.dht.base import Network  # runtime: cycle is type-only

        self = cls.__new__(cls)
        self.network = None
        self.hop_limit = Network.HOP_LIMIT if hop_limit is None else hop_limit
        self.bits = columns.bits
        self.modulus = 1 << columns.bits
        self.nodes = None
        self.index = None
        self.names = None
        count = columns.count
        self.ids = columns.ids
        self.alive = np.ones(count, dtype=bool)
        self.fingers = columns.fingers
        take = columns.successors.shape[1]
        if take == 0:
            self.successors = np.full((count, 1), -1, dtype=np.int32)
        else:
            self.successors = columns.successors
        self.succ_len = np.full(count, take, dtype=np.int64)
        self.pred = columns.predecessor
        self.live_sorted_ids = columns.sorted_ids
        self.live_sorted_idx = columns.sorted_index
        self.all_alive = True
        self._finalize()
        return self

    def _finalize(self) -> None:
        succ_width = self.successors.shape[1]
        self.ptr_phase_row = np.concatenate(
            [
                np.full(self.bits, self._FINGER, dtype=np.int64),
                np.full(succ_width, self._SUCC, dtype=np.int64),
            ]
        )

    def _in_interval(self, x, left, right):
        """Vectorized ``(left, right]`` clockwise membership; a
        degenerate interval covers the whole ring."""
        modulus = self.modulus
        dx = (x - left) % modulus
        dr = (right - left) % modulus
        return (left == right) | ((0 < dx) & (dx <= dr))

    def run(self, sources, key_ids) -> List[LookupRecord]:
        network = self.network
        network.fault_detection = False
        batch = len(sources)
        index = self.index
        cur = np.fromiter(
            (index[id(source)] for source in sources), np.int64, batch
        )
        if not bool(self.alive[cur].all()):
            raise ValueError("lookup source must be alive")
        keys = np.fromiter(key_ids, np.int64, batch)

        hops, timeouts, success, phase_counts, final_idx, hop_log = (
            self._execute(cur, keys)
        )
        all_targets = (
            np.concatenate([targets for _, targets, _ in hop_log])
            if hop_log
            else np.empty(0, dtype=np.int64)
        )
        self._flush_query_counts(all_targets, self.names, network)
        return self._build_records(
            sources, key_ids, hops, timeouts, success, phase_counts,
            final_idx, hop_log, self.names,
        )

    def run_ids(self, source_idx, keys) -> Dict[str, object]:
        """Array-mode batch: node-index sources, ring-id keys.  The
        record-free counterpart of :meth:`run` — see
        :meth:`CycloidKernel.run_linear`."""
        cur = np.asarray(source_idx, dtype=np.int64).copy()
        keys = np.asarray(keys, dtype=np.int64)
        if not bool(self.alive[cur].all()):
            raise ValueError("lookup source must be alive")
        hops, timeouts, success, phase_counts, final_idx, _hop_log = (
            self._execute(cur, keys)
        )
        return {
            "hops": hops,
            "timeouts": timeouts,
            "success": success,
            "phase_counts": phase_counts,
            "final": final_idx,
        }

    def _execute(self, cur, keys):
        batch = cur.shape[0]
        # Ground truth: the key's live successor.
        slot = np.searchsorted(self.live_sorted_ids, keys)
        slot[slot == self.live_sorted_ids.size] = 0
        owners = self.live_sorted_idx[slot]

        hops = np.zeros(batch, dtype=np.int64)
        timeouts = np.zeros(batch, dtype=np.int64)
        phase_counts = np.zeros((batch, 2), dtype=np.int64)
        done = np.zeros(batch, dtype=bool)
        failed = np.zeros(batch, dtype=bool)
        hop_log: List[Tuple] = []
        hop_limit = self.hop_limit
        bits = self.bits
        succ_width = self.successors.shape[1]

        while True:
            active = ~done & (hops < hop_limit)
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            current = cur[rows]
            cur_id = self.ids[current]
            key = keys[rows]

            # Terminate when the node believes it is responsible.
            pred = self.pred[current]
            pred_id = self.ids[np.maximum(pred, 0)]
            believes = np.where(
                pred < 0,
                self.succ_len[current] == 0,
                self._in_interval(key, pred_id, cur_id),
            )
            # Singleton / orphaned node: _choose_next returns `current`
            # and the engine terminates on the spot.
            stop = (cur_id == key) | believes | (self.succ_len[current] == 0)
            if stop.any():
                done[rows[stop]] = True
                rows = rows[~stop]
                if rows.size == 0:
                    continue
                current = cur[rows]
                cur_id = self.ids[current]
                key = keys[rows]

            m = rows.size
            succ = self.successors[current]
            succ_safe = np.maximum(succ, 0)
            succ_id = self.ids[succ_safe]
            believed_id = succ_id[:, 0]  # succ_len >= 1 here
            delivering = self._in_interval(key, cur_id, believed_id)

            # Segment A — the believed-successor walk (delivery step).
            seg_a_valid = delivering[:, None] & (succ >= 0)

            # Segment B — closest preceding pointers, fingers before
            # successors, sorted by clockwise distance descending.
            pointers = np.concatenate(
                [self.fingers[current], succ], axis=1
            )
            ptr_w = bits + succ_width
            ptr_safe = np.maximum(pointers, 0)
            ptr_id = self.ids[ptr_safe]
            ptr_valid = (
                ~delivering[:, None]
                & (pointers >= 0)
                & (ptr_id != cur_id[:, None])
                & self._in_interval(ptr_id, cur_id[:, None], key[:, None])
            )
            distance = (ptr_id - cur_id[:, None]) % self.modulus
            ptr_key = np.where(
                ptr_valid,
                (self.modulus - distance) * ptr_w
                + np.arange(ptr_w, dtype=np.int64),
                _INF,
            )
            ptr_phase = np.broadcast_to(self.ptr_phase_row, (m, ptr_w))
            seg_b, seg_b_valid, seg_b_phase = _sort_segment(
                ptr_key, pointers, ptr_valid, ptr_phase
            )

            # Segment C — the last-resort live-successor delivery (no
            # timeout accounting on this walk).
            seg_c_valid = ~delivering[:, None] & (succ >= 0)

            cand = np.concatenate([succ, seg_b, succ], axis=1)
            valid = np.concatenate(
                [seg_a_valid, seg_b_valid, seg_c_valid], axis=1
            )
            width = cand.shape[1]
            positions = np.arange(width, dtype=np.int64)
            c_start = succ_width + ptr_w
            cand_safe = np.maximum(cand, 0)
            acceptable = (
                valid if self.all_alive else valid & self.alive[cand_safe]
            )
            accept_pos = _first_true(acceptable)

            # A fully-live universe forwards on the first valid
            # candidate and never times out.
            if not self.all_alive:
                cand_id = np.where(valid, self.ids[cand_safe], -1)
                cand_dead = (
                    valid
                    & ~self.alive[cand_safe]
                    & (positions[None, :] < c_start)
                )
                dup = np.zeros_like(cand_dead)
                for j in range(1, c_start):
                    dup[:, j] = (
                        (cand_id[:, :j] == cand_id[:, j : j + 1])
                        & cand_dead[:, :j]
                    ).any(axis=1)
                timeouts[rows] += (
                    cand_dead
                    & ~dup
                    & (positions[None, :] < accept_pos[:, None])
                ).sum(axis=1)

            accepted = accept_pos < width
            gather = np.minimum(accept_pos, width - 1)
            row_arange = np.arange(m)
            targets = cand[row_arange, gather]
            # Phase: segment A and C are successor steps; segment B
            # carries per-candidate labels through the sort.
            in_b = (accept_pos >= succ_width) & (accept_pos < c_start)
            pcode = np.where(
                in_b,
                seg_b_phase[
                    row_arange,
                    np.minimum(
                        np.maximum(gather - succ_width, 0), ptr_w - 1
                    ),
                ],
                self._SUCC,
            )
            terminal = accepted & ~in_b  # segments A and C deliver

            go = accepted
            go_rows = rows[go]
            cur[go_rows] = targets[go]
            hops[go_rows] += 1
            phase_counts[go_rows, pcode[go]] += 1
            hop_log.append((go_rows, targets[go], pcode[go]))
            done[rows[terminal]] = True
            dead_end = ~accepted
            done[rows[dead_end]] = True
            failed[rows[dead_end]] = True

        success = ~failed & (cur == owners)
        return hops, timeouts, success, phase_counts, cur, hop_log
