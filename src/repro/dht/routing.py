"""The shared lookup execution engine.

Every overlay used to re-implement the same ``route()`` driver loop —
hop counting, ``HOP_LIMIT`` enforcement, timeout accounting, query-load
recording, ``phase_hops`` bookkeeping — around its protocol-specific
next-hop choice.  This module hoists that loop into one place:

* a protocol exposes a *pure step function*
  ``Network.next_hop(current, key_id, state) -> RoutingDecision`` plus
  optional ``begin_route`` (per-lookup scratch state) and
  ``finish_route`` (a final delivery hop, e.g. Cycloid's best-observed
  handoff);
* :class:`LookupEngine` drives the loop once for everyone, enforcing
  ``HOP_LIMIT``, accumulating the :class:`~repro.dht.metrics.LookupRecord`,
  doing query-load accounting, and asserting the phase-sum invariant
  (``sum(phase_hops.values()) == hops``) that
  :class:`~repro.dht.metrics.LookupRecord` can only check when the phase
  dict is populated;
* per-hop :class:`TraceEvent` objects go to a pluggable
  :class:`TraceObserver`.  The default is no observer at all — the hot
  path pays a single ``is None`` test per hop.

The engine is deliberately tolerant of protocols that consume routing
state without sending a message (Koorde's de Bruijn self-shift):
a decision with neither a node nor a terminal flag re-enters the loop
without counting a hop.

**Fault mode.**  When the engine is built with an *active*
:class:`~repro.sim.faults.FaultInjector`, it flips
``network.fault_detection`` on for the duration of each lookup.  Step
functions then return their first-preference candidate *without*
filtering dead entries (plus a ranked ``alternates`` list), and the
engine takes over failure detection: every prospective hop is probed
through the injector, a dead target costs one timeout and triggers the
overlay's :meth:`~repro.dht.base.Network.on_dead_entry` lazy repair
before falling through to the next alternate, a dropped message costs
one timeout and re-probes the same target, and each continuation after
a failed probe consumes one unit of the per-lookup ``retry_budget``.
Failed probes appear on the trace stream as :class:`TraceEvent`\\ s
with ``kind`` ``"timeout"`` (dead target) or ``"retry"`` (message
lost).  Without an injector — or with an inactive plan — none of this
runs and routing is bit-exact with the pre-fault engine (pinned by the
golden parity tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    IO,
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.dht.metrics import LookupRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network, Node
    from repro.sim.faults import FaultInjector
    from repro.sim.latency import LatencyModel

__all__ = [
    "RoutingDecision",
    "TraceEvent",
    "TraceObserver",
    "JsonlTraceSink",
    "RecordingTracer",
    "LookupEngine",
    "execute_lookup",
    "step_route",
]


class RoutingDecision:
    """One protocol routing step, as seen by the engine.

    The four meaningful shapes (use the factory methods):

    ========================  =========================================
    ``forward(node, phase)``  hop to ``node``, keep routing
    ``deliver(node, phase)``  hop to ``node``, then stop (delivery step)
    ``terminate()``           stop at the current node
    ``dead_end()``            stop; the lookup failed (no live pointer)
    ``advance()``             consume routing state, no message sent
    ========================  =========================================

    ``timeouts`` counts dead nodes contacted while making the decision
    (paper §4.3); the engine accumulates it in every case, including
    terminal ones.

    ``alternates`` is a ranked tuple of ``(node, phase)`` fallback
    candidates, populated only when the network is in fault-detection
    mode (``network.fault_detection``): if the engine's probe of the
    primary target fails, it falls through these in order.  In the
    fault-free path it is always empty and never consulted.
    """

    __slots__ = ("node", "phase", "timeouts", "terminal", "failed", "alternates")

    def __init__(
        self,
        node: Optional["Node"],
        phase: str,
        timeouts: int,
        terminal: bool,
        failed: bool,
        alternates: Tuple[Tuple["Node", str], ...] = (),
    ) -> None:
        self.node = node
        self.phase = phase
        self.timeouts = timeouts
        self.terminal = terminal
        self.failed = failed
        self.alternates = alternates

    @staticmethod
    def forward(
        node: "Node",
        phase: str,
        timeouts: int = 0,
        alternates: Tuple[Tuple["Node", str], ...] = (),
    ) -> "RoutingDecision":
        """Hop to ``node`` (one message) and keep routing."""
        return RoutingDecision(node, phase, timeouts, False, False, alternates)

    @staticmethod
    def deliver(
        node: "Node",
        phase: str,
        timeouts: int = 0,
        alternates: Tuple[Tuple["Node", str], ...] = (),
    ) -> "RoutingDecision":
        """Hop to ``node`` and terminate — the delivery step."""
        return RoutingDecision(node, phase, timeouts, True, False, alternates)

    @staticmethod
    def terminate(timeouts: int = 0) -> "RoutingDecision":
        """Stop at the current node (it believes it is responsible, or
        no entry improves on what has been seen)."""
        return RoutingDecision(None, "", timeouts, True, False)

    @staticmethod
    def dead_end(timeouts: int = 0) -> "RoutingDecision":
        """Stop at the current node; the lookup failed outright."""
        return RoutingDecision(None, "", timeouts, True, True)

    @staticmethod
    def advance(timeouts: int = 0) -> "RoutingDecision":
        """Consume routing state without sending a message (Koorde's
        self-pointing de Bruijn shift); the engine loops again without
        counting a hop."""
        return RoutingDecision(None, "", timeouts, False, False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.node if self.node is not None else "-"
        kind = "terminal" if self.terminal else "forward"
        return (
            f"<RoutingDecision {kind} {target} phase={self.phase!r} "
            f"timeouts={self.timeouts} failed={self.failed}>"
        )


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One routed hop, as emitted to trace observers.

    ``hop`` is 1-based; ``timeouts`` counts the dead nodes contacted
    while deciding this hop (not a running total).

    ``kind`` is ``"hop"`` for every counted hop.  In fault mode the
    engine additionally reports failed probes on the same stream:
    ``"timeout"`` (probe hit a dead node; ``node`` is the dead target,
    ``hop`` the prospective hop index that was being attempted) and
    ``"retry"`` (the message to a live target was lost; the engine
    re-probes it while retry budget remains).  Failed-probe events
    never count as hops.

    ``latency_ms`` is this hop's modeled link delay when the engine was
    built with a :class:`~repro.sim.latency.LatencyModel`; it stays
    ``None`` on latency-free runs and on failed-probe events (latency is
    charged only on counted hops, so a record's total always equals the
    sum over its path).
    """

    lookup_id: int
    hop: int
    node: object
    phase: str
    timeouts: int
    kind: str = "hop"
    latency_ms: Optional[float] = None


class TraceObserver:
    """Receiver of per-lookup trace callbacks.  All methods are no-ops;
    subclass and override what you need.  Passing ``observer=None`` to
    the engine (the default) skips event construction entirely."""

    def on_lookup_start(
        self, lookup_id: int, source: "Node", key_id: object
    ) -> None:
        """A lookup is about to be routed."""

    def on_hop(self, event: TraceEvent) -> None:
        """One hop was taken (exactly one call per counted hop)."""

    def on_lookup_end(self, lookup_id: int, record: LookupRecord) -> None:
        """The lookup terminated; ``record`` is its final accounting."""


class JsonlTraceSink(TraceObserver):
    """Write one JSON line per hop to ``stream`` (the ``--trace`` format).

    Every line carries the lookup id, the 1-based hop index, the node
    hopped to, the phase label and the step's timeout count; node names
    and ids are stringified so any overlay's identifiers serialise.
    Failed-probe events (fault mode only) additionally carry a ``kind``
    key (``"timeout"`` or ``"retry"``); plain hops omit it, keeping the
    fault-free line format unchanged.  Likewise a hop routed under a
    latency model carries its modeled ``latency_ms``, and latency-free
    hops omit the key.
    """

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.events_written = 0

    def on_hop(self, event: TraceEvent) -> None:
        line = {
            "lookup": event.lookup_id,
            "hop": event.hop,
            "node": str(event.node),
            "phase": event.phase,
            "timeouts": event.timeouts,
        }
        if event.kind != "hop":
            line["kind"] = event.kind
        if event.latency_ms is not None:
            line["latency_ms"] = event.latency_ms
        self.stream.write(json.dumps(line))
        self.stream.write("\n")
        self.events_written += 1


class RecordingTracer(TraceObserver):
    """Keep every event in memory — the test/debugging observer."""

    def __init__(self) -> None:
        self.starts: List[Tuple[int, object, object]] = []
        self.events: List[TraceEvent] = []
        self.records: List[Tuple[int, LookupRecord]] = []

    def on_lookup_start(
        self, lookup_id: int, source: "Node", key_id: object
    ) -> None:
        self.starts.append((lookup_id, source.name, key_id))

    def on_hop(self, event: TraceEvent) -> None:
        self.events.append(event)

    def on_lookup_end(self, lookup_id: int, record: LookupRecord) -> None:
        self.records.append((lookup_id, record))

    def events_for(self, lookup_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.lookup_id == lookup_id]


def step_route(
    network: "Network", current: "Node", key_id: object, state: object
) -> Tuple[RoutingDecision, int]:
    """One engine-equivalent routing step at ``current``.

    Calls :meth:`~repro.dht.base.Network.next_hop` repeatedly until the
    protocol either names a hop target or terminates, absorbing any
    message-free ``advance()`` decisions (Koorde's de Bruijn self-shift)
    in between.  Returns the hop-or-terminal decision plus the timeouts
    the absorbed advances accumulated (the final decision's own
    ``timeouts`` are *not* included — they stay attributed to the hop,
    exactly as the engine traces them).

    This is the single step primitive shared by :class:`LookupEngine`
    and the live cluster serving layer (:mod:`repro.net.server`), which
    routes the same decisions hop-by-hop over real sockets; keeping both
    on one code path is what makes the live-vs-engine parity suite
    meaningful.
    """
    advance_timeouts = 0
    while True:
        decision = network.next_hop(current, key_id, state)
        if decision.node is not None or decision.terminal:
            return decision, advance_timeouts
        advance_timeouts += decision.timeouts


class LookupEngine:
    """The single driver loop shared by all overlays.

    One engine instance carries reusable scratch across a batch of
    lookups: the observer, the running lookup id, and the zeroed
    phase-dict template (``Network.ROUTING_PHASES``) copied per lookup
    so records keep the pre-refactor shape of every phase present even
    at zero hops.

    ``injector`` + ``retry_budget`` arm fault mode (see the module
    docstring); with the default ``injector=None`` the engine is the
    bit-exact fault-free driver.

    ``latency`` attaches a :class:`~repro.sim.latency.LatencyModel`:
    every counted hop is then charged the model's link delay, traced on
    its :class:`TraceEvent`, and summed into the record's
    ``latency_ms``.  The total is a pure function of the record's
    ``path``, so any executor that reproduces the path (the columnar
    kernel, the live cluster) reproduces the milliseconds bit-exactly.
    With the default ``latency=None`` records carry ``latency_ms=None``
    and are bit-identical to the pre-latency engine.
    """

    __slots__ = (
        "network",
        "observer",
        "injector",
        "retry_budget",
        "latency",
        "_fault_mode",
        "_next_id",
        "_phase_template",
    )

    def __init__(
        self,
        network: "Network",
        observer: Optional[TraceObserver] = None,
        injector: Optional["FaultInjector"] = None,
        retry_budget: int = 0,
        latency: Optional["LatencyModel"] = None,
    ) -> None:
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.network = network
        self.observer = observer
        self.injector = injector
        self.retry_budget = retry_budget
        self.latency = latency
        self._fault_mode = injector is not None and injector.active
        self._next_id = 0
        self._phase_template = dict.fromkeys(network.ROUTING_PHASES, 0)

    def _probe(
        self,
        lookup_id: int,
        hop_index: int,
        current: "Node",
        decision: RoutingDecision,
        budget: int,
    ) -> Tuple[Optional["Node"], str, int, int, int]:
        """Resolve a decision's target under fault injection.

        Walks the primary candidate then the ranked alternates: a lost
        message re-probes the same target, a dead target triggers the
        overlay's :meth:`~repro.dht.base.Network.on_dead_entry` lazy
        repair and falls through to the next candidate.  Every failed
        probe costs one timeout and is traced; every continuation after
        a failed probe spends one unit of the per-lookup retry budget.

        Returns ``(node, phase, timeouts, retries, budget_left)``;
        ``node`` is ``None`` when the budget or candidates ran out.
        """
        network = self.network
        injector = self.injector
        observer = self.observer
        candidates = [(decision.node, decision.phase)]
        candidates.extend(decision.alternates)
        timeouts = 0
        retries = 0
        index = 0
        while index < len(candidates):
            node, phase = candidates[index]
            if node.alive and injector.delivered(current, node):
                return node, phase, timeouts, retries, budget
            timeouts += 1
            if node.alive:
                kind = "retry"  # message lost; same target again
            else:
                kind = "timeout"
                network.route_repairs += network.on_dead_entry(current, node)
                index += 1
            if observer is not None:
                observer.on_hop(
                    TraceEvent(lookup_id, hop_index, node.name, phase, 1, kind)
                )
            if budget <= 0:
                break
            budget -= 1
            retries += 1
        return None, "", timeouts, retries, budget

    def run(self, source: "Node", key_id: object) -> LookupRecord:
        """Route one lookup from ``source`` toward ``key_id``."""
        network = self.network
        observer = self.observer
        fault_mode = self._fault_mode
        latency = self.latency
        total_ms = 0.0
        # Step functions consult this flag to decide whether to filter
        # dead entries themselves (fault-free) or hand the engine an
        # unfiltered primary plus alternates (fault mode).  Set on every
        # run so a fault engine never leaks the flag into later
        # fault-free engines on the same network.
        network.fault_detection = fault_mode
        budget = self.retry_budget
        lookup_id = self._next_id
        self._next_id += 1
        if not source.alive:
            raise ValueError("lookup source must be alive")
        owner = network.cached_owner_of_id(key_id)
        phases = dict(self._phase_template)
        state = network.begin_route(source, key_id)
        current = source
        hops = 0
        timeouts = 0
        retries = 0
        failed = False
        path = [source.name]
        if observer is not None:
            observer.on_lookup_start(lookup_id, source, key_id)
        record_visit = network._record_visit
        limit = network.HOP_LIMIT

        while hops < limit:
            decision, advance_timeouts = step_route(
                network, current, key_id, state
            )
            timeouts += advance_timeouts + decision.timeouts
            node = decision.node
            phase = decision.phase
            if node is None:
                failed = decision.failed
                break
            if fault_mode:
                node, phase, probe_timeouts, probe_retries, budget = (
                    self._probe(lookup_id, hops + 1, current, decision, budget)
                )
                timeouts += probe_timeouts
                retries += probe_retries
                if node is None:
                    # Could not reach any candidate: the message is
                    # stuck at ``current`` and the lookup fails.
                    failed = True
                    break
            hop_ms = None
            if latency is not None:
                hop_ms = latency.delay_ms(current.name, node.name)
                total_ms += hop_ms
            current = node
            hops += 1
            phases[phase] += 1
            path.append(node.name)
            record_visit(node)
            if observer is not None:
                observer.on_hop(
                    TraceEvent(
                        lookup_id,
                        hops,
                        node.name,
                        phase,
                        decision.timeouts,
                        latency_ms=hop_ms,
                    )
                )
            if decision.terminal:
                break

        # A protocol may owe one final delivery hop once the walk stops
        # (Cycloid hands the request to the closest live node the
        # message observed, §3.1); this runs even when the loop exhausted
        # HOP_LIMIT, exactly as the pre-engine implementations did.
        final = network.finish_route(current, key_id, state)
        if final is not None and final.node is not None:
            timeouts += final.timeouts
            node = final.node
            phase = final.phase
            if fault_mode:
                node, phase, probe_timeouts, probe_retries, budget = (
                    self._probe(lookup_id, hops + 1, current, final, budget)
                )
                timeouts += probe_timeouts
                retries += probe_retries
            if node is not None:
                hop_ms = None
                if latency is not None:
                    hop_ms = latency.delay_ms(current.name, node.name)
                    total_ms += hop_ms
                current = node
                hops += 1
                phases[phase] += 1
                path.append(current.name)
                record_visit(current)
                if observer is not None:
                    observer.on_hop(
                        TraceEvent(
                            lookup_id,
                            hops,
                            current.name,
                            phase,
                            final.timeouts,
                            latency_ms=hop_ms,
                        )
                    )

        assert sum(phases.values()) == hops, (
            f"{network.protocol_name}: phase hops {phases} do not sum to "
            f"{hops} total hops"
        )
        record = LookupRecord(
            hops=hops,
            success=(not failed) and current is owner,
            timeouts=timeouts,
            phase_hops=phases,
            source=source.name,
            key=key_id,
            owner=current.name,
            path=path,
            retries=retries,
            latency_ms=total_ms if latency is not None else None,
        )
        if observer is not None:
            observer.on_lookup_end(lookup_id, record)
        return record

    def run_batch(
        self, pairs: Iterable[Tuple["Node", object]]
    ) -> List[LookupRecord]:
        """Route ``(source, key_id)`` pairs, reusing this engine's state."""
        run = self.run
        return [run(source, key_id) for source, key_id in pairs]


def execute_lookup(
    network: "Network",
    source: "Node",
    key_id: object,
    observer: Optional[TraceObserver] = None,
    injector: Optional["FaultInjector"] = None,
    retry_budget: int = 0,
    latency: Optional["LatencyModel"] = None,
) -> LookupRecord:
    """Convenience wrapper: route a single lookup through a fresh engine."""
    return LookupEngine(network, observer, injector, retry_budget, latency).run(
        source, key_id
    )
