"""Build-once network snapshots: flat, picklable captures of overlays.

The parallel engine (DESIGN.md §S20) used to rebuild a cell's network
from its setup callable once *per shard* — the full join protocol, n
times.  This module captures a prepared network **once** as a flat,
picklable structure and restores fresh, fully-independent copies in
O(state):

* :func:`pack_network` flattens a :class:`~repro.dht.base.Network` into
  a :class:`PackedNetwork`: every reachable node (live *and* dead — a
  stale pointer to a departed node is load-bearing state, it is what
  produces timeouts) is assigned an index, and every node-to-node edge
  becomes an index reference.  The object graph of an overlay is a
  linked structure with O(n) traversal depth, so naive ``pickle`` or
  ``copy.deepcopy`` would blow the recursion limit at paper scale;
  the flattening is iterative and the packed form has bounded depth.
* :func:`unpack_network` rebuilds the network in two phases — allocate
  every node shell first, then fill slots — so arbitrary pointer
  cycles (successor lists, leaf sets, de Bruijn chains, CAN neighbour
  lists) restore without recursion.
* :class:`NetworkSnapshot` wraps the pickled bytes for cross-process
  shipment; :func:`clone_network` is the in-process fast path (pack +
  unpack, no serialisation) used by serial shard execution.

What is captured: node slots, membership containers
(:class:`~repro.dht.ring.SortedRing`,
:class:`~repro.core.topology.CycloidTopology`, plain lists/dicts),
RNG state (``random.Random`` is captured via ``getstate`` so a clone
never shares a generator with its original), and counters.  What is
*not*: the memoized owner cache (identity-based, rebuilt lazily) and
fault injectors (reattached from the plan seed — see
:class:`~repro.sim.faults.FaultState`).  Restored copies are therefore
bit-exact substitutes for a fresh rebuild: the clone-vs-rebuild parity
suite pins that for every overlay, with and without faults.
"""

from __future__ import annotations

import pickle
import random
from collections import Counter, deque
from dataclasses import dataclass
from itertools import accumulate, pairwise, repeat
from typing import TYPE_CHECKING, Dict, List, Tuple, Type

try:  # numpy is the only third-party dependency and may be absent
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network, Node

__all__ = [
    "NetworkSnapshot",
    "PackedNetwork",
    "index_column",
    "pack_network",
    "unpack_network",
    "clone_network",
    "register_composite",
]

#: Shared-by-reference leaves: immutable, so original and clone may
#: alias them safely.  Frozen dataclass instances (``CycloidId``,
#: ``RingId``, CAN's ``Zone``) qualify too — see :func:`_is_frozen`.
_ATOMIC = (bool, int, float, complex, str, bytes, type(None))
_ATOMIC_TYPES = frozenset(_ATOMIC)

#: Placeholder for a node slot that was never assigned (stays unset on
#: the restored copy).
_MISSING = ("miss",)

#: Mutable composite classes (plain ``__dict__`` objects) the encoder
#: may descend into — membership containers registered by their own
#: modules via :func:`register_composite`.
_COMPOSITES: Tuple[Type, ...] = ()

#: Network attributes never serialised.  The owner cache maps key ids
#: to node *identities*; a restored copy rebuilds it lazily.
_SKIPPED_ATTRS = frozenset({"_owner_cache"})


def register_composite(cls: type) -> type:
    """Allow the packer to flatten instances of ``cls`` via ``__dict__``.

    Container classes that hold node references (``SortedRing``,
    ``CycloidTopology``) register themselves at import time.  Returns
    ``cls`` so it can be used as a class decorator.
    """
    global _COMPOSITES
    if cls not in _COMPOSITES:
        _COMPOSITES = _COMPOSITES + (cls,)
    return cls


def index_column(values) -> object:
    """A node-index (or length) column in its narrowest safe dtype.

    Index payloads dominate snapshot bytes and kernel gather bandwidth,
    so homogeneous non-negative index lists are stored as numpy arrays
    downcast to ``int32`` whenever every value fits in 31 bits (any
    population below 2**31 nodes — i.e. always, in practice).  The
    dtype is a pure function of the *values*, which is what lets the
    bulk builder (:mod:`repro.dht.bulkbuild`) reproduce the packed form
    byte-for-byte without consulting the object graph.  Falls back to a
    plain list when numpy is unavailable.
    """
    if np is None:  # pragma: no cover - exercised on numpy-free installs
        return list(values)
    array = np.asarray(values, dtype=np.int64)
    if array.size == 0 or int(array.max(initial=0)) < 2**31:
        return array.astype(np.int32)
    return array


def _as_list(column: object) -> List:
    """Normalise an index column (array or list) back to a plain list."""
    if np is not None and isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


def _is_frozen(value: object) -> bool:
    """Frozen-dataclass instances are immutable — share by reference."""
    params = getattr(type(value), "__dataclass_params__", None)
    return params is not None and params.frozen


def _is_shareable(value: object) -> bool:
    """Immutable values the clone may alias instead of copying.

    Atomics, frozen dataclasses and tuples thereof.  Containers of
    shareables take the bulk fast paths below, which is what makes
    restore O(state) with small constants: a 2048-entry ring id list
    decodes with one C-level ``list()`` call, not 2048 dispatches.
    """
    if type(value) in _ATOMIC_TYPES:
        return True
    if type(value) is tuple:
        return all(_is_shareable(item) for item in value)
    return _is_frozen(value)


#: ``Node`` is an ABC, so ``isinstance`` routes through the (slow) abc
#: protocol; the packer does hundreds of thousands of node checks per
#: capture, so the verdict is memoized per concrete class.
_IS_NODE_CACHE: Dict[type, bool] = {}


_SLOT_NAMES_CACHE: Dict[type, List[str]] = {}


def _slot_names(cls: type) -> List[str]:
    """Every ``__slots__`` name across the MRO, base classes first."""
    names = _SLOT_NAMES_CACHE.get(cls)
    if names is None:
        names = []
        seen = set()
        for klass in reversed(cls.__mro__):
            for name in getattr(klass, "__slots__", ()):
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        _SLOT_NAMES_CACHE[cls] = names
    return names


@dataclass(frozen=True)
class PackedNetwork:
    """Flat, bounded-depth, *columnar* form of a network.

    Nodes are grouped by class; each group stores one **column** per
    slot (in :func:`_slot_names` order) instead of one tuple per node.
    A column is a small tagged tuple describing every member's value
    for that slot at once:

    ========  =====================================================
    ``"="``   shareable values, stored as-is (aliased with the clone)
    ``"n"``   one node reference per member, stored as an index
    ``"n?"``  node-or-``None`` per member
    ``"nl"``  a list of nodes per member — flat index list + lengths
    ``"nl?"`` a list of node-or-``None`` per member
    ``"nt"``  a tuple of nodes per member — flat index list + lengths
    ``"*"``   generic fallback: per-value :func:`pack_network` encode
    ========  =====================================================

    The columnar layout is what makes restore fast: the pickle stream
    is a handful of long homogeneous lists (ints and atoms) rather
    than thousands of tiny per-node tuples, and decode fills a whole
    slot across the population with one tight loop instead of one
    dispatch per value.  Node references anywhere in ``attrs`` or
    inside generic columns appear as ``("n", i)`` tags; homogeneous
    containers use bulk tags (``"L"``/``"N"``/``"D"`` ...).  The
    structure contains no cycles and no deep nesting, so it pickles
    without recursion issues.
    """

    network_class: type
    attrs: Dict[str, object]
    node_count: int
    groups: Tuple[Tuple[type, Tuple[int, ...], Tuple[Tuple, ...]], ...]


def pack_network(network: "Network") -> PackedNetwork:
    """Flatten ``network`` (iteratively — no deep recursion)."""
    from repro.dht.base import Node  # runtime import; cycle is type-only

    index_of: Dict[int, int] = {}
    order: List[Node] = []
    node_cache = _IS_NODE_CACHE

    def is_node(value: object) -> bool:
        cls = value.__class__
        flag = node_cache.get(cls)
        if flag is None:
            flag = node_cache[cls] = isinstance(value, Node)
        return flag

    def node_index(node: "Node") -> int:
        index = index_of.get(id(node))
        if index is None:
            index = len(order)
            index_of[id(node)] = index
            order.append(node)
        return index

    def encode(value: object) -> object:
        if is_node(value):
            return ("n", node_index(value))
        if isinstance(value, _ATOMIC) or _is_frozen(value):
            return value
        if isinstance(value, list):
            if all(is_node(item) for item in value):
                return ("N", [node_index(item) for item in value])
            if all(_is_shareable(item) for item in value):
                return ("L", list(value))
            return ("l", [encode(item) for item in value])
        if isinstance(value, tuple):
            if all(_is_shareable(item) for item in value):
                return ("T", value)
            if all(is_node(item) for item in value):
                return ("TN", [node_index(item) for item in value])
            return ("t", [encode(item) for item in value])
        if isinstance(value, Counter):
            if all(
                _is_shareable(k) and _is_shareable(v)
                for k, v in value.items()
            ):
                return ("C", list(value.items()))
            return ("c", [(encode(k), encode(v)) for k, v in value.items()])
        if isinstance(value, dict):
            if all(_is_shareable(k) for k in value):
                if all(is_node(v) for v in value.values()):
                    return (
                        "D",
                        tuple(value.keys()),
                        index_column([node_index(v) for v in value.values()]),
                    )
                if all(_is_shareable(v) for v in value.values()):
                    return ("A", list(value.items()))
            return ("d", [(encode(k), encode(v)) for k, v in value.items()])
        if isinstance(value, frozenset):
            if all(_is_shareable(item) for item in value):
                return ("F", value)
            return ("fs", [encode(item) for item in value])
        if isinstance(value, set):
            if all(_is_shareable(item) for item in value):
                return ("S", list(value))
            return ("s", [encode(item) for item in value])
        if isinstance(value, random.Random):
            return ("r", value.getstate())
        if isinstance(value, _COMPOSITES):
            return (
                "o",
                type(value),
                {k: encode(v) for k, v in vars(value).items()},
            )
        raise TypeError(
            f"cannot snapshot {type(value).__name__!r} value {value!r}; "
            "register the class with repro.dht.snapshot.register_composite "
            "or make it a frozen dataclass"
        )

    def discover(value: object) -> None:
        # Register every node reachable inside ``value`` (containers
        # included) without encoding anything yet.  Nodes themselves are
        # only registered, not traversed — the cursor walk below visits
        # their slots, so an O(n)-deep pointer chain costs O(n) queue
        # entries, not O(n) stack frames.
        stack = [value]
        while stack:
            item = stack.pop()
            if item.__class__ in _ATOMIC_TYPES:
                continue
            if is_node(item):
                node_index(item)
            elif isinstance(item, (list, tuple, set, frozenset)):
                stack.extend(item)
            elif isinstance(item, dict):
                stack.extend(item.keys())
                stack.extend(item.values())
            elif isinstance(item, _COMPOSITES):
                stack.extend(vars(item).values())

    attrs = {
        name: encode(value)
        for name, value in vars(network).items()
        if name not in _SKIPPED_ATTRS
    }
    # ``order`` grows while node slots are scanned: slots may reference
    # nodes (dead ones included) reachable only through other nodes.
    rows: List[Tuple[type, List[object]]] = []
    cursor = 0
    while cursor < len(order):
        node = order[cursor]
        cursor += 1
        cls = type(node)
        values: List[object] = []
        for name in _slot_names(cls):
            try:
                value = getattr(node, name)
            except AttributeError:
                values.append(_MISSING)  # unset slot: stays unset
                continue
            discover(value)
            values.append(value)
        rows.append((cls, values))

    def pack_column(values: List[object]) -> Tuple:
        if not any(v is _MISSING for v in values):
            if all(_is_shareable(v) for v in values):
                return ("=", values)
            if all(is_node(v) for v in values):
                return ("n", index_column([index_of[id(v)] for v in values]))
            if all(v is None or is_node(v) for v in values):
                return (
                    "n?",
                    [None if v is None else index_of[id(v)] for v in values],
                )
            if all(type(v) is list for v in values):
                lens = [len(v) for v in values]
                flat = [item for v in values for item in v]
                if all(is_node(item) for item in flat):
                    return (
                        "nl",
                        index_column([index_of[id(x)] for x in flat]),
                        index_column(lens),
                    )
                if all(item is None or is_node(item) for item in flat):
                    return (
                        "nl?",
                        [
                            None if x is None else index_of[id(x)]
                            for x in flat
                        ],
                        lens,
                    )
            if all(type(v) is tuple for v in values):
                lens = [len(v) for v in values]
                flat = [item for v in values for item in v]
                if all(is_node(item) for item in flat):
                    return (
                        "nt",
                        index_column([index_of[id(x)] for x in flat]),
                        index_column(lens),
                    )
        return (
            "*",
            [v if v is _MISSING else encode(v) for v in values],
        )

    # Group rows by class (insertion order — deterministic given the
    # discovery order) and transpose each group's slots into columns.
    member_indices: Dict[type, List[int]] = {}
    for index, (cls, _) in enumerate(rows):
        member_indices.setdefault(cls, []).append(index)
    groups: List[Tuple[type, Tuple[int, ...], Tuple[Tuple, ...]]] = []
    for cls, indices in member_indices.items():
        columns = tuple(
            pack_column([rows[i][1][slot] for i in indices])
            for slot in range(len(_slot_names(cls)))
        )
        groups.append((cls, tuple(indices), columns))
    return PackedNetwork(
        network_class=type(network),
        attrs=attrs,
        node_count=len(rows),
        groups=tuple(groups),
    )


def unpack_network(packed: PackedNetwork) -> "Network":
    """Rebuild a fully-independent network from its packed form."""
    shells: List[object] = [None] * packed.node_count
    for cls, indices, _ in packed.groups:
        new = cls.__new__
        for index in indices:
            shells[index] = new(cls)

    def decode(value: object) -> object:
        if type(value) is not tuple:
            return value
        tag = value[0]
        if tag == "n":
            return shells[value[1]]
        if tag == "N":
            return [shells[i] for i in value[1]]
        if tag == "L":
            return list(value[1])
        if tag == "T":
            return value[1]  # immutable: share with the packed form
        if tag == "TN":
            return tuple(shells[i] for i in value[1])
        if tag == "D":
            return dict(zip(value[1], map(shell_at, _as_list(value[2]))))
        if tag == "A":
            return dict(value[1])
        if tag == "C":
            return Counter(dict(value[1]))
        if tag == "S":
            return set(value[1])
        if tag == "F":
            return value[1]  # immutable: share with the packed form
        if tag == "l":
            return [decode(item) for item in value[1]]
        if tag == "t":
            return tuple(decode(item) for item in value[1])
        if tag == "c":
            return Counter({decode(k): decode(v) for k, v in value[1]})
        if tag == "d":
            return {decode(k): decode(v) for k, v in value[1]}
        if tag == "fs":
            return frozenset(decode(item) for item in value[1])
        if tag == "s":
            return {decode(item) for item in value[1]}
        if tag == "r":
            rng = random.Random()
            rng.setstate(value[1])
            return rng
        if tag == "o":
            composite = value[1].__new__(value[1])
            composite.__dict__.update(
                {k: decode(v) for k, v in value[2].items()}
            )
            return composite
        raise ValueError(f"unknown pack tag {tag!r}")

    shell_at = shells.__getitem__

    def fill(members, name, values):
        # ``map`` consumed by a zero-length deque runs the whole
        # setattr sweep at C speed — the per-slot loops are the hot
        # path of restore once decoding itself is columnar.
        deque(map(setattr, members, repeat(name), values), maxlen=0)

    def runs(mapped, lens):
        bounds = accumulate(lens, initial=0)
        return [mapped[a:b] for a, b in pairwise(bounds)]

    for cls, indices, columns in packed.groups:
        members = list(map(shell_at, indices))
        for name, column in zip(_slot_names(cls), columns):
            tag = column[0]
            if tag == "=":
                fill(members, name, column[1])
            elif tag == "n":
                fill(members, name, map(shell_at, _as_list(column[1])))
            elif tag == "n?":
                fill(
                    members,
                    name,
                    [None if i is None else shells[i] for i in column[1]],
                )
            elif tag == "nl":
                mapped = list(map(shell_at, _as_list(column[1])))
                fill(members, name, runs(mapped, _as_list(column[2])))
            elif tag == "nt":
                mapped = list(map(shell_at, _as_list(column[1])))
                fill(
                    members,
                    name,
                    map(tuple, runs(mapped, _as_list(column[2]))),
                )
            elif tag == "nl?":
                mapped = [
                    None if i is None else shells[i] for i in column[1]
                ]
                fill(members, name, runs(mapped, column[2]))
            else:  # "*": generic per-value encoding
                for shell, encoded in zip(members, column[1]):
                    if encoded.__class__ is tuple:
                        if encoded == _MISSING:
                            continue
                        setattr(shell, name, decode(encoded))
                    else:
                        setattr(shell, name, encoded)
    network = packed.network_class.__new__(packed.network_class)
    for name, encoded in packed.attrs.items():
        network.__dict__[name] = decode(encoded)
    network._owner_cache = {}
    return network


def clone_network(network: "Network") -> "Network":
    """In-process deep clone via pack/unpack — no serialisation cost."""
    return unpack_network(pack_network(network))


class _PackedRestore:
    """Pickle shim: a payload that unpickles into the live network."""

    __slots__ = ("packed",)

    def __init__(self, packed: PackedNetwork) -> None:
        self.packed = packed

    def __reduce__(self):
        return (unpack_network, (self.packed,))


@dataclass(frozen=True)
class NetworkSnapshot:
    """An immutable capture of a prepared network.

    ``payload`` is the pickled :class:`PackedNetwork` (the network's
    ``__getstate__`` delegates to :func:`pack_network`, so the bytes
    are flat and recursion-safe).  One snapshot is taken per experiment
    cell and shipped to every worker; each :meth:`restore` yields a
    fresh, fully-independent copy.
    """

    payload: bytes
    protocol: str
    population: int

    @classmethod
    def capture(cls, network: "Network") -> "NetworkSnapshot":
        return cls(
            payload=pickle.dumps(network, pickle.HIGHEST_PROTOCOL),
            protocol=network.protocol_name,
            population=network.size,
        )

    @classmethod
    def from_packed(cls, packed: PackedNetwork) -> "NetworkSnapshot":
        """A snapshot straight from a :class:`PackedNetwork`.

        This is how bulk-built networks (:mod:`repro.dht.bulkbuild`)
        enter the snapshot pipeline without ever instantiating the
        object graph on the producing side: the payload unpickles via
        :func:`unpack_network`, exactly like a captured network's
        ``__setstate__`` path.  Only valid for packed forms whose
        nodes are all live (true of any freshly built network) —
        ``population`` is taken from the node count.
        """
        return cls(
            payload=pickle.dumps(
                _PackedRestore(packed), pickle.HIGHEST_PROTOCOL
            ),
            protocol=packed.network_class.protocol_name,
            population=packed.node_count,
        )

    def restore(self) -> "Network":
        return pickle.loads(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkSnapshot {self.protocol} n={self.population} "
            f"{len(self.payload)} bytes>"
        )
