"""Key-value storage on top of any overlay.

The paper's DHTs *assign* keys to nodes; a usable system also has to
move the data when the assignment changes.  :class:`KeyValueStore`
layers put/get on a :class:`~repro.dht.base.Network` and migrates
key-value pairs on joins and departures, mirroring how Pastry/Chord
implementations hand off state:

* ``put`` routes to the key's owner and stores there (counting hops);
* ``join`` pulls the keys the newcomer now owns from their previous
  holders;
* a graceful ``leave`` pushes the departing node's keys to their new
  owners;
* an *ungraceful* failure loses the node's replica-less keys — unless
  ``replicas > 1``, in which case leaf-set-style neighbour replicas
  cover the loss (the paper's future-work direction, §5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dht.base import Network, Node
from repro.dht.metrics import LookupRecord

__all__ = [
    "KeyValueStore",
    "StoreResult",
    "StorageShard",
    "closeness",
    "replica_set",
]


def closeness(network: Network, key_id: object, node: Node) -> object:
    """Distance of ``node`` to ``key_id`` in the overlay's own metric."""
    node_id = node.node_id
    distance = getattr(key_id, "distance_to", None)
    if distance is not None:  # Cycloid's composite metric
        return distance(node_id)
    # Ring DHTs: clockwise distance from key to node.
    modulus = getattr(network, "ring", None)
    if modulus is not None:
        return (node_id - key_id) % network.ring.modulus
    raise TypeError(f"unsupported network {type(network).__name__}")


def replica_set(network: Network, key: object, replicas: int) -> List[Node]:
    """The key's owner plus its ``replicas - 1`` closest live peers.

    One definition shared by the in-memory :class:`KeyValueStore` and
    the live serving path (:mod:`repro.net.server`), so a wire replica
    push lands on exactly the nodes the in-memory store would choose.
    The owner is always a member; ties are broken by the overlay's own
    closeness metric over its live population.
    """
    key_id = network.key_id(key)
    owner = network.owner_of_id(key_id)
    if replicas == 1:
        return [owner]
    ranked: List[Tuple[object, Node]] = [
        (closeness(network, key_id, node), node)
        for node in network.live_nodes()
    ]
    ranked.sort(key=lambda item: item[0])
    chosen = [node for _, node in ranked[:replicas]]
    if owner not in chosen:
        chosen[-1] = owner
    return chosen


class StorageShard:
    """Per-server key/value shelves for the live cluster (repro.net).

    A :class:`~repro.net.server.NodeService` keeps one shard holding
    the pairs whose owning virtual nodes it hosts; PUT/GET frames route
    to the owner over the wire and land here.  This is the wire-level
    counterpart of :class:`KeyValueStore`'s per-node shelves — the live
    path stores on the owner only (``replicas = 1`` semantics), while
    replication and migration stay an in-memory concern of
    :class:`KeyValueStore`.
    """

    __slots__ = ("_shelves",)

    def __init__(self) -> None:
        #: node name -> {key: value}
        self._shelves: Dict[str, Dict[str, object]] = {}

    def put(self, node_name: str, key: str, value: object) -> None:
        self._shelves.setdefault(node_name, {})[key] = value

    def get(self, node_name: str, key: str) -> Tuple[bool, object]:
        """``(found, value)`` for ``key`` on ``node_name``'s shelf."""
        shelf = self._shelves.get(node_name, {})
        if key in shelf:
            return True, shelf[key]
        return False, None

    def keys_on(self, node_name: str) -> List[str]:
        return list(self._shelves.get(node_name, {}))

    def drop_pair(self, node_name: str, key: str) -> bool:
        """Discard one pair from ``node_name``'s shelf (rereplication
        moved it elsewhere); returns whether it was present."""
        shelf = self._shelves.get(node_name)
        if shelf is None or key not in shelf:
            return False
        del shelf[key]
        if not shelf:
            del self._shelves[node_name]
        return True

    def drop_node(self, node_name: str) -> int:
        """Discard a departed node's shelf; returns the pair count."""
        return len(self._shelves.pop(node_name, {}))

    def total_pairs(self) -> int:
        return sum(len(shelf) for shelf in self._shelves.values())


class StoreResult:
    """Outcome of a put/get: the value (for get) plus routing cost."""

    __slots__ = ("value", "record", "found")

    def __init__(
        self, value: object, record: Optional[LookupRecord], found: bool
    ) -> None:
        self.value = value
        self.record = record
        self.found = found

    @property
    def hops(self) -> int:
        return self.record.hops if self.record is not None else 0


class KeyValueStore:
    """Replicated key-value storage over an overlay network.

    ``replicas = r`` keeps each pair on the owner plus its ``r - 1``
    closest live neighbours in ID space (the overlay's own closeness),
    so any single silent failure is survivable for ``r >= 2``.
    """

    def __init__(self, network: Network, replicas: int = 1) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.network = network
        self.replicas = replicas
        #: node name -> {key: value}; node names survive node objects.
        self._stored: Dict[object, Dict[object, object]] = {}

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------

    def put(self, source: Node, key: object, value: object) -> StoreResult:
        """Route from ``source`` to the key's owner and store there."""
        record = self.network.lookup(source, key)
        for holder in self._replica_set(key):
            self._shelf(holder)[key] = value
        return StoreResult(value, record, True)

    def get(self, source: Node, key: object) -> StoreResult:
        """Route from ``source`` to the key's owner and read the value."""
        record = self.network.lookup(source, key)
        owner = self.network.owner_of_key(key)
        shelf = self._stored.get(owner.name, {})
        if key in shelf:
            return StoreResult(shelf[key], record, True)
        # Owner lost it (e.g. silent failure without replicas): probe
        # the replica set before giving up.
        for holder in self._replica_set(key):
            backup = self._stored.get(holder.name, {})
            if key in backup:
                # Repair the primary copy on the way out.
                shelf = self._shelf(owner)
                shelf[key] = backup[key]
                return StoreResult(backup[key], record, True)
        return StoreResult(None, record, False)

    def keys_on(self, node: Node) -> List[object]:
        """The keys currently held by ``node``."""
        return list(self._stored.get(node.name, {}))

    def total_pairs(self) -> int:
        """Distinct keys stored anywhere (replicas not double-counted)."""
        distinct = set()
        for shelf in self._stored.values():
            distinct.update(shelf)
        return len(distinct)

    # ------------------------------------------------------------------
    # membership hooks
    # ------------------------------------------------------------------

    def on_join(self, node: Node) -> int:
        """Hand over the keys the newcomer now owns; returns the count.

        Call right after ``network.join``.  Pulls from every current
        holder whose keys now map to the newcomer (or to its replica
        set).
        """
        moved = 0
        for holder_name, shelf in list(self._stored.items()):
            for key in list(shelf):
                replicas = self._replica_set(key)
                names = {n.name for n in replicas}
                if node.name in names:
                    self._shelf(node)[key] = shelf[key]
                    moved += 1
                if holder_name not in names:
                    del shelf[key]
        return moved

    def on_leave(self, node: Node) -> int:
        """Push a gracefully departing node's keys to their new owners.

        Call right after ``network.leave`` (the departing node transfers
        its data as part of saying goodbye); returns the count moved.
        """
        shelf = self._stored.pop(node.name, {})
        moved = 0
        for key, value in shelf.items():
            for holder in self._replica_set(key):
                holder_shelf = self._shelf(holder)
                if key not in holder_shelf:
                    holder_shelf[key] = value
                    moved += 1
        return moved

    def on_silent_failure(self, node: Node) -> int:
        """A node vanished without handover: its copies are gone.

        Returns how many keys lost their *only* copy (zero when
        ``replicas >= 2`` and the replica set stayed connected).

        **Documented loss path:** replication only survives failures
        that are spaced wider than the replica set.  With
        ``replicas = r``, ``r`` silent failures that hit *every* holder
        of a key — e.g. both the owner and its neighbour replica at
        ``r = 2`` — before :meth:`rereplicate` runs lose the pair
        permanently: the second ``on_silent_failure`` call finds no
        surviving copy and reports the loss
        (``tests/dht/test_storage.py`` pins this).
        """
        shelf = self._stored.pop(node.name, {})
        lost = 0
        for key, value in shelf.items():
            if not any(
                key in self._stored.get(other.name, {})
                for other in self._replica_set(key)
            ):
                lost += 1
        del value
        return lost

    def rereplicate(self) -> int:
        """Restore the replica invariant after churn; returns copies made.

        Run alongside stabilisation: every stored pair is pushed to its
        current replica set and dropped from nodes outside it.
        """
        copies = 0
        for holder_name, shelf in list(self._stored.items()):
            for key in list(shelf):
                value = shelf[key]
                replicas = self._replica_set(key)
                names = {n.name for n in replicas}
                for holder in replicas:
                    target = self._shelf(holder)
                    if key not in target:
                        target[key] = value
                        copies += 1
                if holder_name not in names:
                    del shelf[key]
        return copies

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _shelf(self, node: Node) -> Dict[object, object]:
        return self._stored.setdefault(node.name, {})

    def _replica_set(self, key: object) -> List[Node]:
        """The key's owner plus its ``replicas - 1`` closest live peers."""
        return replica_set(self.network, key, self.replicas)

    def _closeness(self, key_id: object, node: Node) -> object:
        """Distance of ``node`` to ``key_id`` in the overlay's own metric."""
        return closeness(self.network, key_id, node)
