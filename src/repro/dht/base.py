"""Abstract node / network protocol shared by all four DHTs.

Each overlay (Cycloid, Chord, Koorde, Viceroy) subclasses
:class:`Network` and :class:`Node`, so every experiment in
:mod:`repro.experiments` is written once against this interface.

The simulation model follows the paper's Java simulators: a *network*
object holds all node state centrally; a *lookup* is executed as a
sequence of routing-table consultations, counting one hop per forward and
one timeout per contact with a departed node (§4.3).  There is no packet
loss or latency model — the paper's metrics are hop counts, timeouts,
key counts and query counts, all topology-level quantities.
"""

from __future__ import annotations

import abc
import enum
from collections import Counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.dht.metrics import LookupRecord
from repro.dht.routing import LookupEngine, RoutingDecision, TraceObserver
from repro.dht.snapshot import (
    NetworkSnapshot,
    clone_network,
    pack_network,
    unpack_network,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.sim.faults import FaultInjector
    from repro.sim.latency import LatencyModel

__all__ = ["LookupOutcome", "Node", "Network"]

#: Upper bound on memoized owner entries per network.  Ring overlays
#: draw key ids from spaces as large as 2**52 (Viceroy), so an
#: unbounded cache could grow without limit under adversarial
#: workloads; paper-scale experiments stay far below this.
OWNER_CACHE_LIMIT = 65536


class LookupOutcome(enum.Enum):
    """Terminal state of a lookup."""

    SUCCESS = "success"  # reached the key's correct storing node
    WRONG_OWNER = "wrong_owner"  # terminated on a live but incorrect node
    DEAD_END = "dead_end"  # no live next hop (Koorde under failures)
    HOP_LIMIT = "hop_limit"  # safety valve; indicates a routing bug


class Node(abc.ABC):
    """A participant in an overlay.

    Concrete nodes carry their protocol's routing state.  ``alive`` is
    flipped by graceful departures; stale pointers to dead nodes are what
    produce timeouts until stabilisation repairs them.
    """

    __slots__ = ("name", "alive")

    def __init__(self, name: object) -> None:
        self.name = name
        self.alive = True

    @property
    @abc.abstractmethod
    def node_id(self) -> object:
        """The node's identifier in its overlay's ID space."""

    @property
    @abc.abstractmethod
    def degree(self) -> int:
        """Number of distinct routing-state entries currently held."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "" if self.alive else " dead"
        return f"<{type(self).__name__} {self.node_id}{status}>"


class Network(abc.ABC):
    """An overlay network: the node population plus protocol operations.

    Subclasses must populate :attr:`protocol_name` and implement the
    abstract operations.  The base class provides query-load accounting,
    which Fig. 10 needs uniformly across protocols: every node that
    *receives* a lookup message (every hop target, including the final
    owner, excluding the source) has its query counter incremented.
    """

    protocol_name: str = "abstract"

    #: Safety bound on routing steps; generous multiple of any correct
    #: path so hitting it flags a routing bug rather than masking one.
    HOP_LIMIT = 4096

    #: Every phase label :meth:`next_hop` may emit, in reporting order.
    #: The lookup engine zero-fills these in ``LookupRecord.phase_hops``
    #: so the per-phase breakdown (Figs 7/14) always sees every phase.
    ROUTING_PHASES: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._query_counts: Counter = Counter()
        #: memoized ``key_id -> owner`` map; every membership change
        #: (join/leave/fail) calls :meth:`invalidate_owner_cache`.
        self._owner_cache: Dict[object, Node] = {}
        #: running count of *other* nodes whose routing state a join or
        #: graceful leave updated — the connectivity-maintenance cost
        #: the paper's conclusion weighs across designs.
        self.maintenance_updates: int = 0
        #: set by the lookup engine on every run: ``True`` while an
        #: active fault injector drives the probe loop, in which case
        #: :meth:`next_hop` must return its first-preference candidate
        #: *unfiltered* (plus ranked alternates) and leave dead-node
        #: detection to the engine.  ``False`` restores the classic
        #: filter-inside-the-step behaviour.
        self.fault_detection: bool = False
        #: running count of stale routing entries lazily evicted or
        #: replaced via :meth:`on_dead_entry` (fault mode only).
        self.route_repairs: int = 0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def live_nodes(self) -> Sequence[Node]:
        """All currently-live nodes (stable iteration order)."""

    @property
    def size(self) -> int:
        """Live population count.

        The base implementation materialises :meth:`live_nodes`; every
        concrete overlay overrides it with an O(1) answer from its own
        index (ring/topology/zone list), which the per-hop paths and the
        experiment drivers rely on.
        """
        return len(self.live_nodes())

    @abc.abstractmethod
    def join(self, name: object) -> Node:
        """Add a node for ``name`` via the protocol's join procedure."""

    @abc.abstractmethod
    def leave(self, node: Node) -> None:
        """Graceful departure: notify per-protocol relatives, then die.

        Pointers the protocol does not notify (fingers, cubical/cyclic
        neighbours, de Bruijn pointers) are left stale deliberately —
        repairing them is stabilisation's job (§3.3.2).
        """

    def fail(self, node: Node) -> None:
        """Ungraceful failure: the node vanishes without notifying anyone.

        The paper's §3.4 scopes this out of the routing design ("nodes
        must notify others before leaving") and §5 flags handling it as
        future work; this extension point injects exactly that scenario
        so the robustness of each design can be measured.  Every pointer
        anywhere that references the node goes stale until
        stabilisation.  Default implementation raises; overlays opt in.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support silent failures"
        )

    @abc.abstractmethod
    def stabilize(self) -> None:
        """One full round of the protocol's stabilisation over all nodes."""

    def stabilize_node(self, node: Node) -> None:
        """One node's periodic stabilisation step (§4.4 runs these on
        per-node 30 s timers).  Default: protocols without periodic
        stabilisation (Viceroy) do nothing."""

    # ------------------------------------------------------------------
    # keys and lookups
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def key_id(self, key: object) -> object:
        """Hash an application key into this overlay's ID space."""

    @abc.abstractmethod
    def owner_of_id(self, key_id: object) -> Node:
        """Ground truth: the live node responsible for ``key_id``.

        Computed globally (not by routing); lookups are checked against
        it to count failures.
        """

    def cached_owner_of_id(self, key_id: object) -> Node:
        """Memoized :meth:`owner_of_id`.

        ``owner_of_id`` is deterministic between membership changes, so
        the cached node is *the same object* a fresh derivation would
        return — the engine's identity-based success check is
        unaffected.  An entry whose node has since died (possible only
        if an overlay misses an invalidation) is recomputed, never
        served stale.
        """
        cache = self._owner_cache
        node = cache.get(key_id)
        if node is None or not node.alive:
            node = self.owner_of_id(key_id)
            if len(cache) < OWNER_CACHE_LIMIT:
                cache[key_id] = node
        return node

    def invalidate_owner_cache(self) -> None:
        """Drop all memoized owners; call on every join/leave/fail."""
        self._owner_cache.clear()

    def owner_of_key(self, key: object) -> Node:
        return self.cached_owner_of_id(self.key_id(key))

    # -- the routing step contract -------------------------------------
    #
    # Protocols no longer implement the lookup loop themselves: they
    # expose a pure per-hop decision and the shared engine
    # (:mod:`repro.dht.routing`) drives it, counting hops/timeouts,
    # recording query load and emitting trace events.

    @abc.abstractmethod
    def next_hop(
        self, current: Node, key_id: object, state: object
    ) -> RoutingDecision:
        """One protocol routing decision at ``current``.

        ``state`` is whatever :meth:`begin_route` returned for this
        lookup.  The decision carries the next node (or a terminal
        outcome), the phase label of the hop, and the number of dead
        nodes contacted while deciding (one timeout each, paper §4.3).
        """

    def begin_route(self, source: Node, key_id: object) -> object:
        """Per-lookup scratch state handed to every :meth:`next_hop`
        call.  Default: stateless protocols return ``None``."""
        return None

    def pack_route_state(self, state: object) -> object:
        """Encode per-lookup routing state for the live wire (S22).

        The live cluster (:mod:`repro.net`) routes hop-by-hop across
        node servers, so whatever :meth:`begin_route` returned has to
        cross a socket inside the forwarded frame as JSON.  Stateless
        protocols (the ``None`` default) need nothing; overlays that
        carry scratch state override this pair with a loss-free
        name/index encoding.  The contract: ``unpack_route_state`` must
        reconstruct an object under which every subsequent
        :meth:`next_hop` decision is bit-identical to the uninterrupted
        in-memory walk — the live-vs-engine parity suite pins exactly
        that.
        """
        if state is None:
            return None
        raise NotImplementedError(
            f"{type(self).__name__} carries routing state but does not "
            "implement pack_route_state/unpack_route_state for live "
            "serving"
        )

    def unpack_route_state(self, blob: object, key_id: object) -> object:
        """Rebuild :meth:`begin_route` state from its wire form."""
        if blob is None:
            return None
        raise NotImplementedError(
            f"{type(self).__name__} carries routing state but does not "
            "implement pack_route_state/unpack_route_state for live "
            "serving"
        )

    def on_dead_entry(self, observer: Node, dead: Node) -> int:
        """Lazy route repair: ``observer`` just timed out contacting
        ``dead`` (engine fault mode), so evict or replace the stale
        pointer(s) in ``observer``'s routing state — the leaf-set
        successor fallback for Cycloid, the finger walk-down for Chord,
        and so on per overlay.  Returns the number of entries repaired
        (the engine accumulates it in :attr:`route_repairs`).  Default:
        overlays without repairable per-node state do nothing.
        """
        return 0

    def finish_route(
        self, current: Node, key_id: object, state: object
    ) -> Optional[RoutingDecision]:
        """An optional final delivery hop once the walk has stopped
        (Cycloid's best-observed handoff).  Default: none."""
        return None

    def route(self, source: Node, key_id: object) -> LookupRecord:
        """Route a lookup from ``source`` toward ``key_id`` via the
        shared engine."""
        return LookupEngine(self).run(source, key_id)

    def lookup(self, source: Node, key: object) -> LookupRecord:
        """Route a lookup for an application ``key`` from ``source``."""
        return LookupEngine(self).run(source, self.key_id(key))

    def lookup_many(
        self,
        pairs: Iterable[Tuple[Node, object]],
        observer: Optional[TraceObserver] = None,
        injector: Optional["FaultInjector"] = None,
        retry_budget: int = 0,
        backend: str = "object",
        latency: Optional["LatencyModel"] = None,
    ) -> List[LookupRecord]:
        """Route a batch of ``(source, application key)`` lookups.

        One engine (and its scratch state) is reused across the whole
        batch, and ``observer`` — e.g. a
        :class:`~repro.dht.routing.JsonlTraceSink` — receives every
        per-hop trace event with lookup ids numbered from 0.  An active
        ``injector`` arms the engine's fault mode with the given
        per-lookup ``retry_budget``.

        ``backend`` selects the execution strategy (DESIGN §S23):
        ``"object"`` walks the node graph hop-at-a-time via the shared
        engine; ``"columnar"`` dispatches to the vectorized kernel in
        :mod:`repro.dht.kernel`, which is bit-identical and falls back
        to the object engine where required.

        ``latency`` attaches a :class:`~repro.sim.latency.LatencyModel`
        so each record carries the modeled end-to-end ``latency_ms``
        (DESIGN §S25); ``None`` keeps records bit-identical to the
        latency-free engine.
        """
        if backend != "object":
            from repro.dht.kernel import run_lookup_batch

            return run_lookup_batch(
                self,
                pairs,
                backend=backend,
                observer=observer,
                injector=injector,
                retry_budget=retry_budget,
                latency=latency,
            )
        engine = LookupEngine(self, observer, injector, retry_budget, latency)
        key_id = self.key_id
        return [engine.run(source, key_id(key)) for source, key in pairs]

    def route_many(
        self,
        pairs: Iterable[Tuple[Node, object]],
        observer: Optional[TraceObserver] = None,
        injector: Optional["FaultInjector"] = None,
        retry_budget: int = 0,
        backend: str = "object",
        latency: Optional["LatencyModel"] = None,
    ) -> List[LookupRecord]:
        """Route a batch of ``(source, key id)`` lookups (pre-hashed
        variant of :meth:`lookup_many`, same ``backend`` and ``latency``
        selection)."""
        if backend != "object":
            from repro.dht.kernel import run_lookup_batch

            return run_lookup_batch(
                self,
                pairs,
                backend=backend,
                observer=observer,
                injector=injector,
                retry_budget=retry_budget,
                hashed=True,
                latency=latency,
            )
        return LookupEngine(
            self, observer, injector, retry_budget, latency
        ).run_batch(pairs)

    def assign_keys(self, keys: Iterable[object]) -> Dict[Node, int]:
        """Distribute a key corpus; returns keys-per-node counts (Figs 8-9).

        Every live node appears in the result, including zero-key nodes —
        the 1st percentile in the paper's figures depends on them.
        """
        counts: Dict[Node, int] = {node: 0 for node in self.live_nodes()}
        for key in keys:
            counts[self.owner_of_key(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # query-load accounting (Fig. 10)
    # ------------------------------------------------------------------

    def _record_visit(self, node: Node) -> None:
        self._query_counts[node.name] += 1

    def reset_query_counts(self) -> None:
        self._query_counts.clear()

    def query_counts(self) -> List[int]:
        """Per-live-node query counts, zero-filled for unvisited nodes."""
        counts = self._query_counts
        return [counts[node.name] for node in self.live_nodes()]

    # ------------------------------------------------------------------
    # snapshot / clone (DESIGN §S21)
    # ------------------------------------------------------------------

    def snapshot(self) -> NetworkSnapshot:
        """Capture this network as immutable, picklable bytes.

        One snapshot per experiment cell is shipped to every worker
        process; each restore yields a fresh, fully-independent copy
        with identical routing state, so shards run against the
        prepared network in O(state) instead of re-running the join
        protocol.  Fault injectors are never part of the capture —
        they reattach from the plan seed
        (:class:`~repro.sim.faults.FaultState`).
        """
        return NetworkSnapshot.capture(self)

    def clone(self) -> "Network":
        """Fast in-process deep clone (no serialisation round-trip).

        Used by the serial shard path (``workers=1``, observer-forced
        runs) where shipping bytes between processes buys nothing.
        """
        return clone_network(self)

    def __getstate__(self):
        # Pickle via the flat packed form: overlay node graphs are
        # linked structures with O(n) pointer-chain depth, so default
        # pickling recurses past the interpreter limit at paper scale.
        return pack_network(self)

    def __setstate__(self, packed) -> None:
        restored = unpack_network(packed)
        self.__dict__.update(restored.__dict__)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if protocol invariants are violated.

        Subclasses override with structural checks (ring consistency,
        leaf-set symmetry, ...); used heavily by the test suite. The base
        check is that live nodes report themselves alive.
        """
        for node in self.live_nodes():
            assert node.alive, f"live_nodes() returned dead node {node!r}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n={self.size}>"


def filter_alive(nodes: Iterable[Optional[Node]]) -> List[Node]:
    """Utility: drop ``None`` and dead entries from a pointer list."""
    return [n for n in nodes if n is not None and n.alive]
