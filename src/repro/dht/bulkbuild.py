"""Bulk network construction: packed columns straight from the id sample.

The object builder joins one Python node at a time — ``with_random_ids``
inserts, then ``stabilize`` walks every node's wiring rules through
sorted-container bisects.  That is the wall at scale: routing went
columnar in §S23, but *building* a million-node overlay still costs
millions of attribute stores.  This module synthesizes the **packed
form** (:class:`~repro.dht.snapshot.PackedNetwork`) directly from a
seeded identifier sample, as vectorized numpy column math — Cycloid's
cubical/cyclic/leaf columns and Chord's finger/successor runs — never
instantiating per-node Python objects on the way.

The golden reference is the object builder itself: for the same
``(seed, dimension/bits, count, wiring)``, :meth:`CycloidColumns.to_packed`
/ :meth:`ChordColumns.to_packed` reproduce
``pack_network(Network.with_random_ids(...))`` **byte-for-byte** —
:func:`packed_digest` equality, pinned across seeds, dimensions and both
Cycloid ``leaf_selection`` wirings by the bulk-parity suite (DESIGN
§S26).  Two facts make byte-equality attainable rather than merely
aspirational:

* construction is *join-order-free*: the wiring of every node is a pure
  function of the final membership (sorted rows, cycles and rings), and
  the object builder's RNG is split so that the id sample comes from a
  fresh ``make_rng(seed)`` while the network's own ``_rng`` is never
  consumed during build — so every packed byte is a function of
  ``(parameters, seed)`` alone;
* the packed form discovers nodes in id-sample insertion order (the
  membership dict is the first node-bearing attribute encoded), so bulk
  node index ``i`` *is* the ``i``-th sampled identifier.

Downstream, bulk columns feed every execution tier without the object
graph: :func:`repro.dht.kernel.kernel_from_columns` compiles them for
vectorized lookups, :meth:`CycloidColumns.snapshot` enters the snapshot
codec, and :func:`bulk_setup` is a picklable
:func:`~repro.sim.parallel.run_sharded_lookups` setup callable.
"""

from __future__ import annotations

import hashlib
import pickle
import random
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

try:  # numpy is a hard dependency of bulk construction only
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None  # type: ignore[assignment]

from repro.dht.snapshot import (
    NetworkSnapshot,
    PackedNetwork,
    index_column,
    unpack_network,
)
from repro.util.rng import make_rng

__all__ = [
    "SAMPLERS",
    "CycloidColumns",
    "ChordColumns",
    "build_columns",
    "build_cycloid_columns",
    "build_chord_columns",
    "bulk_setup",
    "bulk_ids",
    "packed_digest",
]

#: Identifier samplers.  ``"exact"`` replays ``random.Random(seed)``'s
#: ``sample`` — the object builder's stream, required for digest parity.
#: ``"fast"`` is a seeded numpy PCG64 permutation: a different (still
#: deterministic) sample of the same space, ~100x faster at n=10^6,
#: for scale sweeps where the golden reference could never be built
#: anyway.
SAMPLERS = ("exact", "fast")

#: Largest id space for which bisection queries are answered by an
#: occupancy rank table (one cumsum over the space, then every
#: ``searchsorted`` becomes a gather).  Beyond it — sparse rings with
#: huge ``bits`` — the builders fall back to plain ``searchsorted``,
#: which computes identical values.
RANK_TABLE_SPACE_LIMIT = 1 << 24


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - numpy is baked into CI
        raise RuntimeError(
            "bulk network construction requires numpy; install it or "
            "build networks with Network.with_random_ids"
        )


def bulk_ids(count: int, space: int, seed: Optional[int], sampler: str):
    """``count`` distinct identifiers from ``range(space)``, seeded."""
    _require_numpy()
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}; expected one of {SAMPLERS}"
        )
    if not 1 <= count <= space:
        raise ValueError(
            f"count must be in [1, {space}] for this id space, got {count}"
        )
    if sampler == "exact":
        return np.array(
            make_rng(seed).sample(range(space), count), dtype=np.int64
        )
    rng = np.random.default_rng(np.random.PCG64(seed))
    return rng.permutation(space)[:count].astype(np.int64)


def packed_digest(packed: PackedNetwork) -> str:
    """sha256 over the canonical pickle of a packed network.

    The parity currency of this module: bulk-built and object-built
    packed forms are compared as *bytes*, so any drift — a value, a
    dtype, a dict insertion order — fails loudly.
    """
    return hashlib.sha256(
        pickle.dumps(packed, pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def _column_bytes(columns) -> int:
    """Total bytes held by the numpy columns of a dataclass."""
    total = 0
    for field in fields(columns):
        value = getattr(columns, field.name)
        if np is not None and isinstance(value, np.ndarray):
            total += value.nbytes
    return total


# ----------------------------------------------------------------------
# shared packed-form helpers (must mirror pack_network's tag selection)
# ----------------------------------------------------------------------


def _node_column(refs) -> Tuple:
    """A per-node node-reference column from an index array (-1 = None),
    tagged exactly like ``pack_column``: ``"="`` when every entry is
    None, ``"n"`` when none is, ``"n?"`` otherwise."""
    values = refs.tolist()
    if all(v < 0 for v in values):
        return ("=", [None] * len(values))
    if all(v >= 0 for v in values):
        return ("n", index_column(values))
    return ("n?", [None if v < 0 else v for v in values])


def _list_column(matrix, lens) -> Tuple:
    """An ``"nl"`` column from a padded index matrix plus row lengths."""
    width = matrix.shape[1]
    valid = np.arange(width)[None, :] < lens[:, None]
    return ("nl", index_column(matrix[valid]), index_column(lens))


def _base_attrs() -> Dict[str, object]:
    """The packed ``Network.__init__`` attributes of a fresh build, in
    ``vars`` order (``_owner_cache`` is never packed)."""
    return {
        "_query_counts": ("C", []),
        "maintenance_updates": 0,
        "fault_detection": False,
        "route_repairs": 0,
    }


def _rng_state(seed: Optional[int]) -> Tuple:
    """The packed ``_rng`` of a freshly built network: the constructor
    seeds ``make_rng(seed)`` and construction never draws from it."""
    return ("r", random.Random(seed).getstate())


# ----------------------------------------------------------------------
# Cycloid
# ----------------------------------------------------------------------


@dataclass
class CycloidColumns:
    """Flat columns of a fully-wired Cycloid overlay, sample-indexed.

    Node index ``i`` is the ``i``-th sampled identifier.  Reference
    columns hold node indices with ``-1`` for void entries; leaf
    matrices are ``-1``-padded with explicit row lengths (inside sides
    share one length, outside sides another).
    """

    protocol = "cycloid"

    dimension: int
    leaf_radius: int
    leaf_selection: str
    seed: Optional[int]
    sampler: str
    latency: Optional[object]
    lin: "np.ndarray"  # int64 [n]   linear ids, sample order
    cyc: "np.ndarray"  # int64 [n]   cyclic index
    cub: "np.ndarray"  # int64 [n]   cubical index
    cn: "np.ndarray"  # int32 [n]   cubical neighbour (-1 = None)
    cl: "np.ndarray"  # int32 [n]   cyclic larger
    cs: "np.ndarray"  # int32 [n]   cyclic smaller
    inside_left: "np.ndarray"  # int32 [n, radius] padded
    inside_right: "np.ndarray"
    outside_left: "np.ndarray"
    outside_right: "np.ndarray"
    inside_len: "np.ndarray"  # int32 [n]
    outside_len: "np.ndarray"  # int32 [n]

    @property
    def count(self) -> int:
        return int(self.lin.size)

    @property
    def space(self) -> int:
        return self.dimension << self.dimension

    def column_bytes(self) -> int:
        return _column_bytes(self)

    def to_packed(self) -> PackedNetwork:
        """Materialise the exact ``pack_network`` form of this build."""
        from repro.core.network import CycloidNetwork
        from repro.core.node import CycloidNode
        from repro.core.topology import CycloidTopology
        from repro.dht.identifiers import CycloidId

        d = self.dimension
        n = self.count
        cyc_l = self.cyc.tolist()
        cub_l = self.cub.tolist()
        names = [f"n{value}" for value in self.lin.tolist()]
        ids = [
            CycloidId(cyclic, cubical, d)
            for cyclic, cubical in zip(cyc_l, cub_l)
        ]

        # Membership containers in their object insertion orders: the
        # node map keyed in sample order; the cycle/row maps keyed by
        # first occurrence in the sample, each value list sorted.
        cycle_sorted = np.lexsort((self.cyc, self.cub))
        occ, occ_start, occ_size = np.unique(
            self.cub[cycle_sorted], return_index=True, return_counts=True
        )
        row_sorted = np.lexsort((self.cub, self.cyc))
        row_keys, row_start, row_size = np.unique(
            self.cyc[row_sorted], return_index=True, return_counts=True
        )

        def grouped_items(keys, sort_order, values, uniq, starts, sizes):
            items = []
            for key in keys:
                at = int(np.searchsorted(uniq, key))
                lo = int(starts[at])
                members = values[sort_order[lo : lo + int(sizes[at])]]
                items.append((key, ("L", members.tolist())))
            return items

        cycle_keys = self.cub[np.sort(np.unique(self.cub, return_index=True)[1])]
        row_first = self.cyc[np.sort(np.unique(self.cyc, return_index=True)[1])]
        cycles_items = grouped_items(
            cycle_keys.tolist(), cycle_sorted, self.cyc,
            occ, occ_start, occ_size,
        )
        by_cyclic_items = grouped_items(
            row_first.tolist(), row_sorted, self.cub,
            row_keys, row_start, row_size,
        )

        attrs = _base_attrs()
        attrs["dimension"] = d
        attrs["leaf_radius"] = self.leaf_radius
        attrs["leaf_selection"] = self.leaf_selection
        attrs["latency"] = self.latency
        attrs["topology"] = (
            "o",
            CycloidTopology,
            {
                "dimension": d,
                "space": self.space,
                "_nodes": (
                    "D",
                    tuple(zip(cyc_l, cub_l)),
                    index_column(np.arange(n)),
                ),
                "_cycles": ("d", cycles_items),
                "_cubicals": ("L", occ.tolist()),
                "_by_cyclic": ("d", by_cyclic_items),
            },
        )
        attrs["_rng"] = _rng_state(self.seed)

        columns = (
            ("=", names),
            ("=", [True] * n),
            ("=", ids),
            _node_column(self.cn),
            _node_column(self.cl),
            _node_column(self.cs),
            _list_column(self.inside_left, self.inside_len),
            _list_column(self.inside_right, self.inside_len),
            _list_column(self.outside_left, self.outside_len),
            _list_column(self.outside_right, self.outside_len),
        )
        return PackedNetwork(
            network_class=CycloidNetwork,
            attrs=attrs,
            node_count=n,
            groups=((CycloidNode, tuple(range(n)), columns),),
        )

    def to_network(self):
        """Instantiate the object network (identical to the object
        builder's, per the digest-parity pin)."""
        return unpack_network(self.to_packed())

    def snapshot(self) -> NetworkSnapshot:
        return NetworkSnapshot.from_packed(self.to_packed())


def build_cycloid_columns(
    count: int,
    dimension: int,
    *,
    leaf_radius: int = 1,
    seed: Optional[int] = None,
    leaf_selection: str = "primary",
    latency=None,
    sampler: str = "exact",
) -> CycloidColumns:
    """Vectorized equivalent of ``CycloidNetwork.with_random_ids``.

    Every wiring rule of ``_wire_routing`` / ``_wire_leaves`` —
    ``in_block`` nearest-with-smaller-tie, ``nearest_in_row``
    clockwise-tie, ``block_bounds`` with ``row_bound`` wrap fallbacks,
    inside-leaf cycle offsets and the outside-cycle walk — is replayed
    as searchsorted/gather math over rows sorted per cyclic index and
    cycles sorted per cubical index.  ``"primary"`` outside selection is
    fully vectorized; ``"random"``/``"proximity"`` evaluate the same
    per-(observer, cycle) stable-hash/RTT picks the object builder
    makes, which costs one Python-level pass over the outside slots.
    """
    from repro.core.network import LEAF_SELECTIONS

    _require_numpy()
    if leaf_radius < 1:
        raise ValueError("leaf_radius must be >= 1")
    if leaf_selection not in LEAF_SELECTIONS:
        raise ValueError(
            f"unknown leaf_selection {leaf_selection!r}; "
            f"expected one of {LEAF_SELECTIONS}"
        )
    if leaf_selection == "proximity" and latency is None:
        raise ValueError(
            "leaf_selection='proximity' needs a LatencyModel to rank "
            "neighbours by"
        )
    d = dimension
    modulus = 1 << d
    lin = bulk_ids(count, d * modulus, seed, sampler)
    n = count
    cyc = lin % d
    cub = lin // d
    node_arange = np.arange(n, dtype=np.int64)

    # -- cycle structure: nodes grouped by cubical, sorted by cyclic --
    cycle_sorted = np.lexsort((cyc, cub))  # sorted pos -> sample index
    sorted_cub = cub[cycle_sorted]
    bounds = np.flatnonzero(
        np.concatenate(([True], sorted_cub[1:] != sorted_cub[:-1]))
    )
    occ = sorted_cub[bounds]  # occupied cubicals, ascending
    occ_start = bounds
    occ_size = np.diff(np.concatenate((bounds, [n])))
    occ_rank = _rank_table(occ, modulus)
    if occ_rank is not None:
        group_of = occ_rank[cub].astype(np.int64)
    else:
        group_of = np.searchsorted(occ, cub)  # per node: its cycle's rank
    gstart = occ_start[group_of]
    gsize = occ_size[group_of]
    rank_sorted = np.arange(n) - np.repeat(occ_start, occ_size)
    cycle_rank = np.empty(n, dtype=np.int64)
    cycle_rank[cycle_sorted] = rank_sorted

    # -- inside leaf sets: ±(1+i) neighbours on the node's own cycle --
    radius = leaf_radius
    multi = gsize > 1
    inside_len = np.where(multi, np.minimum(radius, gsize - 1), 1)
    il = np.full((n, radius), -1, dtype=np.int64)
    ir = np.full((n, radius), -1, dtype=np.int64)
    for i in range(radius):
        valid = multi & (i < inside_len)
        left_pos = gstart + (cycle_rank - 1 - i) % gsize
        right_pos = gstart + (cycle_rank + 1 + i) % gsize
        il[:, i] = np.where(valid, cycle_sorted[left_pos], il[:, i])
        ir[:, i] = np.where(valid, cycle_sorted[right_pos], ir[:, i])
    # A singleton cycle's two inside entries are the node itself.
    il[~multi, 0] = node_arange[~multi]
    ir[~multi, 0] = node_arange[~multi]

    # -- outside leaf sets: the large-cycle walk, then a member pick --
    total_cycles = occ.size
    if total_cycles == 1:
        # The only non-empty cycle wraps onto itself.
        t = 1
        left_ranks = group_of[:, None]
        right_ranks = group_of[:, None]
    else:
        t = min(radius, total_cycles - 1)
        steps = np.arange(1, t + 1, dtype=np.int64)[None, :]
        left_ranks = (group_of[:, None] - steps) % total_cycles
        right_ranks = (group_of[:, None] + steps) % total_cycles
    outside_len = np.full(n, t, dtype=np.int64)
    if leaf_selection == "primary":
        # Vectorized: the primary is the last (largest-cyclic) member
        # of each sorted cycle group.
        primary_idx = cycle_sorted[occ_start + occ_size - 1]
        ol = primary_idx[left_ranks]
        outr = primary_idx[right_ranks]
    else:
        ol = np.empty((n, t), dtype=np.int64)
        outr = np.empty((n, t), dtype=np.int64)
        _pick_outside_members(
            ol, outr, left_ranks, right_ranks, leaf_selection, latency,
            lin, cyc, cycle_sorted, occ, occ_start, occ_size,
        )

    # -- routing table: per cyclic-index row k-1, sorted by cubical --
    row_sorted = np.lexsort((cub, cyc))
    sorted_cyc = cyc[row_sorted]
    row_bounds = np.flatnonzero(
        np.concatenate(([True], sorted_cyc[1:] != sorted_cyc[:-1]))
    )
    row_ends = np.concatenate((row_bounds[1:], [n]))
    rows_by_cyc = {}
    for at, value in enumerate(sorted_cyc[row_bounds].tolist()):
        segment = row_sorted[int(row_bounds[at]) : int(row_ends[at])]
        seg_cub = cub[segment]
        rows_by_cyc[value] = (seg_cub, segment, _rank_table(seg_cub, modulus))

    cn = np.full(n, -1, dtype=np.int32)
    cl = np.full(n, -1, dtype=np.int32)
    cs = np.full(n, -1, dtype=np.int32)
    for k in range(1, d):
        sel = np.flatnonzero(cyc == k)
        if sel.size == 0:
            continue
        row = rows_by_cyc.get(k - 1)
        if row is None:
            continue  # no node of cyclic k-1: all three entries stay void
        row_cub, row_idx, rank = row
        m = row_cub.size
        if rank is not None:
            # table[q] / table[q + 1] are the left / right bisection
            # ranks of q in row_cub — gathers instead of binary search.
            def left_rank(q):
                return rank[q]

            def right_rank(q):
                return rank[q + 1]

        else:
            def left_rank(q):
                return np.searchsorted(row_cub, q, side="left")

            def right_rank(q):
                return np.searchsorted(row_cub, q, side="right")

        a = cub[sel]
        block = 1 << k
        flipped = ((a >> k) ^ 1) << k
        anchor = flipped | (a & (block - 1))
        a_left = left_rank(a)
        a_right = right_rank(a)

        # in_block: nearest cubical within the flipped block, ties to
        # the smaller cubical (min() keeps the first of a sorted slice).
        lo = left_rank(flipped)
        hi = left_rank(flipped + block)
        nonempty = lo < hi
        # Empty slices produce garbage candidates here; they are gathered
        # safely (clamped into the row) and discarded by ``nonempty``.
        floor = np.minimum(lo, m - 1)
        cap = np.minimum(np.maximum(hi - 1, floor), m - 1)
        split = left_rank(anchor)
        left_cand = np.clip(split - 1, floor, cap)
        right_cand = np.clip(split, floor, cap)
        left_gap = np.abs(row_cub[left_cand] - anchor)
        right_gap = np.abs(row_cub[right_cand] - anchor)
        in_block = np.where(left_gap <= right_gap, left_cand, right_cand)

        # nearest_in_row fallback: circular distance, clockwise ties
        # (the first candidate is row[bisect % m] and only a strictly
        # smaller key displaces it).
        cand_a = split % m
        cand_b = (split - 1) % m
        fwd_a = (row_cub[cand_a] - anchor) % modulus
        bwd_a = (anchor - row_cub[cand_a]) % modulus
        fwd_b = (row_cub[cand_b] - anchor) % modulus
        bwd_b = (anchor - row_cub[cand_b]) % modulus
        key_a0 = np.minimum(fwd_a, bwd_a)
        key_a1 = np.where(fwd_a <= bwd_a, 0, 1)
        key_b0 = np.minimum(fwd_b, bwd_b)
        key_b1 = np.where(fwd_b <= bwd_b, 0, 1)
        b_wins = (key_b0 < key_a0) | ((key_b0 == key_a0) & (key_b1 < key_a1))
        nearest = np.where(b_wins, cand_b, cand_a)
        cn[sel] = row_idx[np.where(nonempty, in_block, nearest)]

        # block_bounds within the shared block, row_bound wrap fallback.
        shared = (a >> k) << k
        lo2 = left_rank(shared)
        hi2 = left_rank(shared + block)
        at_or_after = np.clip(a_left, lo2, hi2)
        at_or_before = np.clip(a_right, lo2, hi2) - 1
        clockwise = a_left % m
        counter = (a_right - 1) % m
        larger = np.where(at_or_after < hi2, at_or_after, clockwise)
        smaller = np.where(at_or_before >= lo2, at_or_before, counter)
        cl[sel] = row_idx[larger]
        cs[sel] = row_idx[smaller]

    return CycloidColumns(
        dimension=d,
        leaf_radius=leaf_radius,
        leaf_selection=leaf_selection,
        seed=seed,
        sampler=sampler,
        latency=latency,
        lin=lin,
        cyc=cyc,
        cub=cub,
        cn=_narrow_refs(cn),
        cl=_narrow_refs(cl),
        cs=_narrow_refs(cs),
        inside_left=_narrow_refs(il),
        inside_right=_narrow_refs(ir),
        outside_left=_narrow_refs(ol),
        outside_right=_narrow_refs(outr),
        inside_len=_narrow_refs(inside_len),
        outside_len=_narrow_refs(outside_len),
    )


def _narrow_refs(array):
    """Reference columns in the narrowest safe dtype (int32 in
    practice; indices are bounded by the population)."""
    return array.astype(np.int32, copy=False)


def _rank_table(sorted_values, space: int):
    """``table`` with ``table[x] == np.searchsorted(sorted_values, x)``
    for ``x`` in ``[0, space]`` — one O(space) cumsum that converts
    every subsequent bisection into a gather.  Returns ``None`` when the
    space is too large to tabulate (``RANK_TABLE_SPACE_LIMIT``); callers
    then keep their ``searchsorted`` path, which computes the same
    values.  ``table[x + 1]`` is the ``side="right"`` rank for ``x < space``.
    """
    if space > RANK_TABLE_SPACE_LIMIT:
        return None
    hits = np.zeros(space + 2, dtype=np.int8)
    hits[sorted_values + 1] = 1
    return np.cumsum(hits, dtype=np.int32)


def _pick_outside_members(
    ol, outr, left_ranks, right_ranks, leaf_selection, latency,
    lin, cyc, cycle_sorted, occ, occ_start, occ_size,
):
    """The non-primary outside picks: per-(observer, cycle) stable-hash
    ("random") or modeled-RTT ("proximity") member selection, exactly
    as ``CycloidNetwork._outside_pick`` evaluates them."""
    from repro.sim.latency import stable_unit

    total = occ.size
    members_of = [
        cycle_sorted[int(occ_start[r]) : int(occ_start[r]) + int(occ_size[r])]
        for r in range(total)
    ]
    occ_l = occ.tolist()
    lin_l = lin.tolist()
    cyc_l = cyc.tolist()
    t = ol.shape[1]
    if leaf_selection == "random":
        for i in range(ol.shape[0]):
            name = f"n{lin_l[i]}"
            for j in range(t):
                for ranks, out in ((left_ranks, ol), (right_ranks, outr)):
                    r = int(ranks[i, j])
                    members = members_of[r]
                    pick = int(
                        stable_unit(0, "leaf-pick", name, occ_l[r])
                        * members.size
                    )
                    out[i, j] = members[pick]
        return
    delay_ms = latency.delay_ms
    for i in range(ol.shape[0]):
        name = f"n{lin_l[i]}"
        for j in range(t):
            for ranks, out in ((left_ranks, ol), (right_ranks, outr)):
                r = int(ranks[i, j])
                best = None
                best_key = None
                for member in members_of[r].tolist():
                    key = (delay_ms(name, f"n{lin_l[member]}"), -cyc_l[member])
                    if best_key is None or key < best_key:
                        best, best_key = member, key
                out[i, j] = best


# ----------------------------------------------------------------------
# Chord
# ----------------------------------------------------------------------


@dataclass
class ChordColumns:
    """Flat columns of a fully-stabilised Chord ring, sample-indexed."""

    protocol = "chord"

    bits: int
    successor_list_size: int
    seed: Optional[int]
    sampler: str
    ids: "np.ndarray"  # int64 [n]        identifiers, sample order
    sorted_ids: "np.ndarray"  # int64 [n] identifiers, ring order
    sorted_index: "np.ndarray"  # int32 [n] sample index per ring slot
    fingers: "np.ndarray"  # int32 [n, bits]
    successors: "np.ndarray"  # int32 [n, min(r, n-1)]
    predecessor: "np.ndarray"  # int32 [n], -1 = None

    @property
    def count(self) -> int:
        return int(self.ids.size)

    @property
    def space(self) -> int:
        return 1 << self.bits

    def column_bytes(self) -> int:
        return _column_bytes(self)

    def to_packed(self) -> PackedNetwork:
        """Materialise the exact ``pack_network`` form of this build."""
        from repro.chord.network import ChordNetwork
        from repro.chord.node import ChordNode
        from repro.dht.ring import SortedRing

        n = self.count
        bits = self.bits
        ids_l = self.ids.tolist()
        names = [f"n{value}" for value in ids_l]

        attrs = _base_attrs()
        attrs["bits"] = bits
        attrs["successor_list_size"] = self.successor_list_size
        attrs["ring"] = (
            "o",
            SortedRing,
            {
                "bits": bits,
                "modulus": 1 << bits,
                "_ids": ("L", self.sorted_ids.tolist()),
                "_by_id": ("D", tuple(ids_l), index_column(np.arange(n))),
            },
        )
        attrs["_rng"] = _rng_state(self.seed)

        take = self.successors.shape[1]
        columns = (
            ("=", names),
            ("=", [True] * n),
            ("=", ids_l),
            ("=", [bits] * n),
            _list_column(self.fingers, np.full(n, bits, dtype=np.int64)),
            _list_column(self.successors, np.full(n, take, dtype=np.int64)),
            _node_column(self.predecessor),
        )
        return PackedNetwork(
            network_class=ChordNetwork,
            attrs=attrs,
            node_count=n,
            groups=((ChordNode, tuple(range(n)), columns),),
        )

    def to_network(self):
        return unpack_network(self.to_packed())

    def snapshot(self) -> NetworkSnapshot:
        return NetworkSnapshot.from_packed(self.to_packed())


def build_chord_columns(
    count: int,
    bits: int,
    *,
    successor_list_size: Optional[int] = None,
    seed: Optional[int] = None,
    sampler: str = "exact",
) -> ChordColumns:
    """Vectorized equivalent of ``ChordNetwork.with_random_ids``.

    Ring order is one argsort; successor runs are consecutive ring
    slots, the predecessor the preceding slot, and the whole finger
    table one ``searchsorted`` per bit.
    """
    _require_numpy()
    if successor_list_size is None:
        successor_list_size = bits
    if successor_list_size < 1:
        raise ValueError("successor_list_size must be >= 1")
    modulus = 1 << bits
    ids = bulk_ids(count, modulus, seed, sampler)
    n = count
    ring_order = np.argsort(ids)  # ring slot -> sample index
    sorted_ids = ids[ring_order]
    ring_order = _narrow_refs(ring_order)
    slot_of = np.empty(n, dtype=np.int64)
    slot_of[ring_order] = np.arange(n)

    take = min(successor_list_size, n - 1)
    successors = np.empty((n, take), dtype=np.int32)
    for j in range(take):
        successors[:, j] = ring_order[(slot_of + 1 + j) % n]
    if n > 1:
        predecessor = ring_order[(slot_of - 1) % n]
    else:
        predecessor = np.full(n, -1, dtype=np.int32)

    rank = _rank_table(sorted_ids, modulus)
    fingers = np.empty((n, bits), dtype=np.int32)
    for i in range(bits):
        target = (ids + (1 << i)) % modulus
        if rank is not None:
            slot = rank[target]
        else:
            slot = np.searchsorted(sorted_ids, target, side="left")
        fingers[:, i] = ring_order[slot % n]

    return ChordColumns(
        bits=bits,
        successor_list_size=successor_list_size,
        seed=seed,
        sampler=sampler,
        ids=ids,
        sorted_ids=sorted_ids,
        sorted_index=ring_order,
        fingers=fingers,
        successors=successors,
        predecessor=_narrow_refs(predecessor),
    )


# ----------------------------------------------------------------------
# dispatch + sharded-runner threading
# ----------------------------------------------------------------------


def build_columns(
    protocol: str,
    count: int,
    *,
    dimension: Optional[int] = None,
    bits: Optional[int] = None,
    seed: Optional[int] = None,
    sampler: str = "exact",
    leaf_radius: int = 1,
    leaf_selection: str = "primary",
    latency=None,
    successor_list_size: Optional[int] = None,
):
    """Bulk-build ``protocol`` columns; the scale experiment's entry.

    Sizing defaults mirror :mod:`repro.experiments.registry`: the
    smallest Cycloid dimension / ring bits whose id space holds
    ``count``.
    """
    if protocol == "cycloid":
        if dimension is None:
            from repro.experiments.registry import dimension_for_space

            dimension = dimension_for_space(count)
        return build_cycloid_columns(
            count,
            dimension,
            leaf_radius=leaf_radius,
            seed=seed,
            leaf_selection=leaf_selection,
            latency=latency,
            sampler=sampler,
        )
    if protocol == "chord":
        if bits is None:
            bits = max(1, (count - 1).bit_length())
        return build_chord_columns(
            count,
            bits,
            successor_list_size=successor_list_size,
            seed=seed,
            sampler=sampler,
        )
    # Anything else has no bulk builder; raise the kernel's actionable
    # unknown-protocol error (it names the covered protocols and the
    # object-engine fallback).
    from repro.dht.kernel import compiler_for

    compiler_for(protocol)
    raise ValueError(
        f"protocol {protocol!r} compiles to the columnar kernel but has "
        "no bulk builder; build it with Network.with_random_ids"
    )


def bulk_setup(
    protocol: str,
    count: int,
    seed: Optional[int] = None,
    **build_kwargs,
):
    """A picklable ``run_sharded_lookups`` setup callable.

    Returns ``(network, None)``: the bulk-built network (restored
    through the packed form — identical to the object build, per the
    parity pin) and no fault injector.  Module-level so
    ``functools.partial`` over it crosses the process pool.
    """
    columns = build_columns(protocol, count, seed=seed, **build_kwargs)
    return columns.to_network(), None
