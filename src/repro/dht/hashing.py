"""Consistent hashing onto the DHT identifier spaces.

All four DHTs use consistent hashing (SHA-1, as in Chord/Pastry) to map
application keys and node names onto their identifier spaces.  For the
Cycloid space the paper's rule applies: ``cyclic = h mod d`` and
``cubical = h div d`` where ``h`` is the hash value reduced into
``[0, d * 2^d)`` (§3.1).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

from repro.dht.identifiers import CycloidId, cycloid_space_size

__all__ = ["consistent_hash", "hash_to_ring", "hash_to_cycloid", "hash_to_unit", "key_ids"]


def consistent_hash(key: object) -> int:
    """SHA-1 of the key's string form, as a 160-bit integer.

    Deterministic across processes (unlike built-in ``hash``), which keeps
    experiment workloads reproducible.
    """
    digest = hashlib.sha1(str(key).encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


def hash_to_ring(key: object, bits: int) -> int:
    """Map a key onto the ``2^bits`` ring (Chord / Koorde ID space)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return consistent_hash(key) % (1 << bits)


def hash_to_unit(key: object) -> float:
    """Map a key onto ``[0, 1)`` (Viceroy's ID space)."""
    return consistent_hash(key) / float(1 << 160)


def hash_to_cycloid(key: object, dimension: int) -> CycloidId:
    """Map a key onto the Cycloid ID space by the paper's mod/div rule."""
    h = consistent_hash(key) % cycloid_space_size(dimension)
    return CycloidId(
        cyclic=h % dimension, cubical=h // dimension, dimension=dimension
    )


def key_ids(keys: Iterable[object], bits: int) -> List[int]:
    """Hash a corpus of keys onto the ring; convenience for experiments."""
    return [hash_to_ring(key, bits) for key in keys]
