"""Result formatting: paper-style tables and ASCII series plots."""

from repro.analysis.report import (
    ascii_series,
    format_bench_table,
    format_clone_bench_table,
    format_kernel_bench_table,
    format_table,
    series_by_protocol,
)

__all__ = [
    "format_table",
    "ascii_series",
    "series_by_protocol",
    "format_bench_table",
    "format_clone_bench_table",
    "format_kernel_bench_table",
]
