"""Plain-text rendering of experiment results.

The benchmarks print each figure/table in the same shape the paper
reports it: a column per protocol, a row per x-value, plus a rough
ASCII rendition of the figure series so `bench_output.txt` is readable
on its own.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple, TypeVar

__all__ = [
    "format_table",
    "ascii_series",
    "series_by_protocol",
    "format_bench_table",
    "format_clone_bench_table",
    "format_kernel_bench_table",
]

T = TypeVar("T")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(line[column]) for line in cells)
        for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, line in enumerate(cells):
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(line))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_bench_table(
    cells: Sequence[Mapping[str, object]], workers: int
) -> str:
    """Render ``bench`` cell timings as an aligned table.

    Each cell mapping carries ``protocol``, ``serial_seconds``,
    ``parallel_seconds``, ``speedup`` and ``digest_match`` — the same
    records the bench writes to ``BENCH_parallel.json``.
    """
    rows = [
        [
            cell["protocol"],
            f"{cell['serial_seconds']:.2f}s",
            f"{cell['parallel_seconds']:.2f}s",
            f"{cell['speedup']:.2f}x",
            "yes" if cell["digest_match"] else "NO",
        ]
        for cell in cells
    ]
    return format_table(
        ["protocol", "serial", f"{workers} workers", "speedup", "bit-exact"],
        rows,
        f"Parallel lookup bench (workers={workers})",
    )


def format_clone_bench_table(
    cells: Sequence[Mapping[str, object]]
) -> str:
    """Render the build-vs-clone section of the bench report.

    Each cell mapping carries the ``build_vs_clone`` records of
    ``BENCH_parallel.json``: one full network build timed against a
    snapshot restore and an in-process clone of the same network.
    ``CloneBenchCell`` instances are accepted directly.
    """
    cells = [
        cell.as_dict() if hasattr(cell, "as_dict") else cell
        for cell in cells
    ]
    rows = [
        [
            cell["protocol"],
            str(cell["population"]),
            f"{float(cell['build_seconds']) * 1e3:.1f}ms",
            f"{float(cell['restore_seconds']) * 1e3:.1f}ms",
            f"{float(cell['clone_seconds']) * 1e3:.1f}ms",
            f"{cell['restore_speedup']:.1f}x",
            "yes" if cell["digest_match"] else "NO",
        ]
        for cell in cells
    ]
    return format_table(
        ["protocol", "n", "build", "restore", "clone", "speedup", "bit-exact"],
        rows,
        "Build-once vs per-shard rebuild (one shard's network)",
    )


def format_kernel_bench_table(
    cells: Sequence[Mapping[str, object]]
) -> str:
    """Render the ``kernel`` section of the bench report.

    Each cell mapping carries the object-vs-columnar backend timings of
    ``BENCH_parallel.json`` (DESIGN §S23).  ``KernelBenchCell``
    instances are accepted directly.
    """
    cells = [
        cell.as_dict() if hasattr(cell, "as_dict") else cell
        for cell in cells
    ]
    rows = [
        [
            cell["protocol"],
            str(cell["lookups"]),
            f"{float(cell['object_lookups_per_s']):,.0f}/s",
            f"{float(cell['columnar_lookups_per_s']):,.0f}/s",
            f"{cell['speedup']:.1f}x",
            "yes" if cell["digest_match"] else "NO",
        ]
        for cell in cells
    ]
    return format_table(
        ["protocol", "lookups", "object", "columnar", "speedup", "bit-exact"],
        rows,
        "Lookup execution backends (object vs columnar kernel)",
    )


def series_by_protocol(
    points: Sequence[T],
    x_of: Callable[[T], object],
    y_of: Callable[[T], float],
    protocol_of: Callable[[T], str],
) -> Dict[str, List[Tuple[object, float]]]:
    """Group measurement points into per-protocol (x, y) series."""
    series: Dict[str, List[Tuple[object, float]]] = {}
    for point in points:
        series.setdefault(protocol_of(point), []).append(
            (x_of(point), y_of(point))
        )
    return series


def ascii_series(
    series: Mapping[str, Sequence[Tuple[object, float]]],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """A rough horizontal-bar rendition of figure series."""
    peak = max(
        (y for values in series.values() for _, y in values), default=0.0
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    if peak <= 0:
        peak = 1.0
    for protocol in sorted(series):
        lines.append(f"{protocol}:")
        for x, y in series[protocol]:
            bar = "#" * max(1, round(width * y / peak)) if y > 0 else ""
            lines.append(f"  {x!s:>8} | {bar} {y:.2f}{unit}")
    return "\n".join(lines)
