#!/usr/bin/env python
"""Churn resilience: lookups while peers continuously join and leave.

Drives the paper's §4.4 scenario on the discrete-event engine: lookups
arrive at one per second while peers join and leave as Poisson
processes, and every node runs its stabilisation routine once per 30
simulated seconds.  Compare how the two constant-degree DHTs with
periodic stabilisation (Cycloid, Koorde) and eager-repair Viceroy cope.

Run:  python examples/churn_resilience.py
"""

from __future__ import annotations

from repro import (
    ChurnConfig,
    CycloidNetwork,
    KoordeNetwork,
    ViceroyNetwork,
    run_churn_simulation,
)

START_NODES = 400
DURATION = 600.0  # simulated seconds
RATE = 0.25  # joins/s and leaves/s — one membership event every 2 s


def build(protocol: str):
    if protocol == "cycloid":
        return CycloidNetwork.with_random_ids(START_NODES, 7, seed=3)
    if protocol == "koorde":
        return KoordeNetwork.with_random_ids(START_NODES, 10, seed=3)
    return ViceroyNetwork.with_random_ids(START_NODES, seed=3)


def main() -> None:
    print(
        f"churning {START_NODES}-node overlays for {DURATION:.0f} simulated "
        f"seconds at R = {RATE} joins/s and {RATE} leaves/s\n"
    )
    header = (
        f"{'protocol':10s} {'lookups':>8s} {'failures':>9s} "
        f"{'mean hops':>10s} {'mean timeouts':>14s} {'final n':>8s}"
    )
    print(header)
    print("-" * len(header))
    for protocol in ("cycloid", "koorde", "viceroy"):
        network = build(protocol)
        config = ChurnConfig(
            join_leave_rate=RATE, duration=DURATION, seed=11
        )
        result = run_churn_simulation(network, config)
        timeouts = result.stats.timeout_summary()
        print(
            f"{protocol:10s} {len(result.stats):8d} {result.failures:9d} "
            f"{result.stats.mean_path_length:10.2f} {timeouts.mean:14.3f} "
            f"{result.final_size:8d}"
        )
    print(
        "\nAll lookups resolve during churn; stabilisation (30 s period)"
        "\nkeeps timeouts near zero, and Viceroy's eager repair keeps them"
        "\nat exactly zero — at the maintenance cost the paper describes."
    )


if __name__ == "__main__":
    main()
