#!/usr/bin/env python
"""Replicated key-value storage surviving silent node failures.

The paper scopes ungraceful departures out of Cycloid's routing design
(§3.4) and points at leaf-set-style redundancy as the remedy (§5).
This example exercises both sides with the library's storage layer:

* without replication, a silently crashing node loses its keys;
* with 3-way replication over the overlay's closeness metric, every
  key survives a wave of crashes, and stabilisation + re-replication
  restore the invariant.

Run:  python examples/replicated_store.py
"""

from __future__ import annotations

import random

from repro import CycloidNetwork
from repro.dht.storage import KeyValueStore

PEERS = 300
KEYS = 3000
CRASHES = 30


def run(replicas: int, seed: int) -> None:
    network = CycloidNetwork.with_random_ids(PEERS, 8, seed=seed)
    store = KeyValueStore(network, replicas=replicas)
    writer = network.live_nodes()[0]
    keys = [f"document-{i}" for i in range(KEYS)]
    for key in keys:
        store.put(writer, key, f"contents of {key}")

    rng = random.Random(seed + 1)
    lost = 0
    for victim in rng.sample(list(network.live_nodes())[1:], CRASHES):
        network.fail(victim)  # no goodbye, no handover
        lost += store.on_silent_failure(victim)

    network.stabilize()
    copies = store.rereplicate()

    reader = network.live_nodes()[1]
    readable = sum(store.get(reader, key).found for key in keys)
    print(
        f"replicas={replicas}: {CRASHES} silent crashes -> "
        f"{lost} keys lost outright, {readable}/{KEYS} readable after "
        f"repair ({copies} copies re-made)"
    )


def main() -> None:
    print(f"{PEERS} peers, {KEYS} documents, {CRASHES} silent crashes\n")
    run(replicas=1, seed=10)
    run(replicas=3, seed=10)
    print(
        "\nWith 3-way leaf-set-style replication every document survives —"
        "\nthe §5 remedy for the constant-degree DHT's failure weakness."
    )


if __name__ == "__main__":
    main()
