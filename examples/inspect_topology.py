#!/usr/bin/env python
"""Inspect the cube-connected-cycles structure of a small Cycloid.

Prints every local cycle of a 3-dimensional Cycloid (the paper's
Fig. 1 graph), one node's full routing state (as in Table 2), and then
replays the paper's Fig. 4 example lookup hop by hop in dimension 4.

Run:  python examples/inspect_topology.py
"""

from __future__ import annotations

from repro import CycloidNetwork
from repro.dht.identifiers import CycloidId


def show_cycles(network: CycloidNetwork) -> None:
    d = network.dimension
    print(f"complete {d}-dimensional CCC: {network.size} nodes, "
          f"{1 << d} local cycles of {d} nodes\n")
    for cubical in range(1 << d):
        members = network.topology.cycle_members(cubical)
        primary = network.topology.primary_of(cubical)
        print(
            f"  cycle {cubical:0{d}b}: cyclic indices {members} "
            f"(primary {primary.id})"
        )


def show_routing_state(network: CycloidNetwork, cyclic: int, cubical: int) -> None:
    node = network.topology.get(cyclic, cubical)
    print(f"\nrouting state of node {node.id} "
          f"({node.state_size} entries):")
    print(f"  cubical neighbour : {node.cubical_neighbor.id}")
    print(f"  cyclic neighbours : {node.cyclic_larger.id}, "
          f"{node.cyclic_smaller.id}")
    print(f"  inside leaf set   : {node.inside_left[0].id} | "
          f"{node.inside_right[0].id}")
    print(f"  outside leaf set  : {node.outside_left[0].id} | "
          f"{node.outside_right[0].id}")


def replay_fig4() -> None:
    network = CycloidNetwork.complete(4)
    source = network.topology.get(0, 0b0100)
    key = CycloidId(2, 0b1111, 4)
    print(f"\nFig. 4 example: route {source.id} -> {key} "
          f"in the complete 4-dimensional Cycloid")
    record = network.route(source, key)
    print(f"  resolved in {record.hops} hops, phases {record.phase_hops}, "
          f"success={record.success}")


def main() -> None:
    network = CycloidNetwork.complete(3)
    show_cycles(network)
    eight = CycloidNetwork.complete(8)
    show_routing_state(eight, 4, 0b10110110)  # the paper's Table 2 node
    replay_fig4()


if __name__ == "__main__":
    main()
