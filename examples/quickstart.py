#!/usr/bin/env python
"""Quickstart: build a Cycloid overlay and look up some keys.

Run:  python examples/quickstart.py
"""

from repro import CycloidNetwork

def main() -> None:
    # A Cycloid network of dimension 8 (ID space: 8 * 2^8 = 2048 ids)
    # with 500 participating nodes placed by consistent hashing.
    network = CycloidNetwork.with_random_ids(500, dimension=8, seed=1)
    print(f"built a {network.dimension}-dimensional Cycloid with "
          f"{network.size} nodes")

    # Every node keeps exactly 7 routing entries: 1 cubical neighbour,
    # 2 cyclic neighbours, 2 inside-leaf and 2 outside-leaf nodes.
    node = network.live_nodes()[0]
    print(f"node {node.id} holds {node.state_size} routing entries "
          f"(degree {node.degree})")

    # Keys are mapped onto the same ID space; lookups resolve in O(d).
    for key in ("alice.mp3", "bob.iso", "carol.txt"):
        owner = network.owner_of_key(key)
        record = network.lookup(node, key)
        status = "ok" if record.success else "FAILED"
        print(
            f"lookup({key!r}): {record.hops} hops "
            f"{dict(record.phase_hops)} -> stored on {owner.id} [{status}]"
        )

    # Nodes come and go; leaf sets are repaired immediately, routing
    # tables at the next stabilisation round.
    newcomer = network.join("a-new-peer")
    print(f"joined: {newcomer.id}")
    network.leave(network.live_nodes()[10])
    network.stabilize()
    record = network.lookup(newcomer, "alice.mp3")
    print(f"lookup after churn: {record.hops} hops, success={record.success}")


if __name__ == "__main__":
    main()
