#!/usr/bin/env python
"""Compare all five DHT configurations on one workload.

A compact rendition of the paper's Table 1 + Fig. 5 story: build every
overlay at the same size, measure routing state, lookup path length and
key balance, and print one comparison table.

Run:  python examples/compare_dhts.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import build_complete_network, protocol_label, run_lookups
from repro.experiments.registry import ALL_PROTOCOLS
from repro.sim.workload import uniform_key_corpus
from repro.util.stats import summarize

DIMENSION = 6  # 384 nodes: n = d * 2^d
LOOKUPS = 2000
KEYS = 20_000


def main() -> None:
    corpus = uniform_key_corpus(KEYS, seed=5)
    rows = []
    for protocol in ALL_PROTOCOLS:
        network = build_complete_network(protocol, DIMENSION, seed=5)
        stats = run_lookups(network, LOOKUPS, seed=6)
        keys_per_node = summarize(
            [float(c) for c in network.assign_keys(corpus).values()]
        )
        max_state = max(
            getattr(node, "state_size", node.degree)
            for node in network.live_nodes()
        )
        rows.append(
            [
                protocol_label(protocol),
                network.size,
                max_state,
                f"{stats.mean_path_length:.2f}",
                stats.failures,
                f"{keys_per_node.p99:.0f}",
            ]
        )
    print(
        format_table(
            [
                "system",
                "nodes",
                "max state",
                "mean hops",
                "failed lookups",
                "p99 keys/node",
            ],
            rows,
            title=(
                f"All DHTs, {DIMENSION * 2**DIMENSION} nodes, "
                f"{LOOKUPS} lookups, {KEYS} keys"
            ),
        )
    )
    print(
        "\nCycloid keeps O(1) state and the shortest paths; Chord matches"
        "\nthe paths but pays O(log n) state; Viceroy and Koorde keep O(1)"
        "\nstate but route 2-3x further."
    )


if __name__ == "__main__":
    main()
