#!/usr/bin/env python
"""Sybil ID clustering against one key — and what replication buys.

An adversary who can *choose* node identifiers inserts a cluster of
sybils surrounding one target key's identifier (DESIGN §S27).  With a
single copy of the data, the nearest sybil simply becomes the key's
owner: capture is total.  With ``r``-way replication the key lives on
the ``r`` closest nodes, so the adversary must control the *whole*
neighbourhood — this script sweeps the replica count and shows the
captured share of the replica set falling as ``r`` outgrows the
cluster, while the overall keyspace-capture fraction stays tiny (a
clustered adversary owns the target, not the keyspace).

Run:  python examples/adversarial_demo.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.dht.storage import replica_set
from repro.experiments.adversary import build_adversary_network
from repro.sim.adversary import AdversaryPlan, capture_fraction

POPULATION = 400
SYBILS = 6
TARGET = "payroll-db"
SEED = 23
REPLICA_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    print(
        f"{SYBILS} sybils with crafted ids surround the key {TARGET!r} "
        f"in {POPULATION}-node overlays\n"
    )
    rows = []
    for protocol in ("cycloid", "chord", "koorde"):
        plan = AdversaryPlan(seed=SEED, sybils=SYBILS, target_key=TARGET)
        network = build_adversary_network(protocol, POPULATION, SEED, plan)
        attackers = plan.attacker_names()
        keyspace = capture_fraction(network, attackers, probes=2048)
        owner = network.owner_of_id(network.key_id(TARGET))
        owner_evil = str(owner.name) in attackers
        for replicas in REPLICA_COUNTS:
            holders = replica_set(network, TARGET, replicas)
            captured = sum(
                1 for node in holders if str(node.name) in attackers
            )
            rows.append(
                [
                    protocol,
                    str(replicas),
                    f"{captured}/{len(holders)}",
                    f"{captured / len(holders):.2f}",
                    "yes" if owner_evil else "no",
                    f"{keyspace:.4f}",
                ]
            )
    print(
        format_table(
            [
                "overlay",
                "replicas",
                "captured copies",
                "captured share",
                "owner is sybil",
                "keyspace capture",
            ],
            rows,
            "sybil cluster vs replication",
        )
    )
    print(
        "The cluster owns the target key outright at replicas=1, but its\n"
        "grip dilutes as the replica set outgrows the cluster — and the\n"
        "keyspace-capture column shows clustering buys the adversary one\n"
        "key, not the keyspace.  Compare `repro fig-adversary`, which\n"
        "sweeps attacker fractions and adds eclipse poisoning on top."
    )


if __name__ == "__main__":
    main()
