#!/usr/bin/env python
"""File-sharing scenario: the workload class that motivated DHTs.

A community of peers publishes a catalogue of files into a Cycloid
overlay and then retrieves random files from random peers.  The script
reports the three quantities the paper evaluates: lookup path lengths,
how evenly file ownership spreads over peers, and how evenly query
*forwarding* load spreads (a peer pays bandwidth for every lookup it
relays).

Run:  python examples/file_sharing.py
"""

from __future__ import annotations

import random

from repro import CycloidNetwork
from repro.dht.metrics import LookupStats
from repro.util.stats import summarize

PEERS = 800
FILES = 20_000
DOWNLOADS = 5_000


def main() -> None:
    rng = random.Random(2024)
    network = CycloidNetwork.with_random_ids(PEERS, dimension=8, seed=7)
    print(f"{PEERS} peers joined the overlay "
          f"(ID space {8 * 2**8} identifiers)\n")

    # --- publish ---------------------------------------------------------
    catalogue = [f"track-{i:05d}.flac" for i in range(FILES)]
    per_peer = network.assign_keys(catalogue)
    ownership = summarize([float(c) for c in per_peer.values()])
    print(f"published {FILES} files:")
    print(f"  files per peer: mean {ownership.mean:.1f}, "
          f"p1 {ownership.p1:.0f}, p99 {ownership.p99:.0f}")

    # --- download --------------------------------------------------------
    network.reset_query_counts()
    stats = LookupStats()
    nodes = network.live_nodes()
    for _ in range(DOWNLOADS):
        peer = nodes[rng.randrange(len(nodes))]
        wanted = catalogue[rng.randrange(len(catalogue))]
        stats.add(network.lookup(peer, wanted))

    paths = stats.path_length_summary()
    print(f"\n{DOWNLOADS} downloads:")
    print(f"  all found: {stats.failures == 0}")
    print(f"  hops: mean {stats.mean_path_length:.2f}, "
          f"p99 {paths.p99:.0f} (constant-degree overlay, O(d) lookups)")

    relay = summarize([float(c) for c in network.query_counts()])
    print(f"  relay load per peer: mean {relay.mean:.1f}, "
          f"p1 {relay.p1:.0f}, p99 {relay.p99:.0f}")

    # --- a flash crowd of new peers ---------------------------------------
    for i in range(100):
        network.join(f"flashcrowd-{i}")
    network.stabilize()
    record = network.lookup(network.live_nodes()[0], catalogue[0])
    print(f"\nafter 100 new peers joined: lookup still resolves in "
          f"{record.hops} hops (success={record.success})")


if __name__ == "__main__":
    main()
